"""Command-line interface: ``python -m repro.cli`` (or the ``repro-bench`` script).

Subcommands
-----------
``simulate``      run one simulated training configuration and print its metrics
``figure``        regenerate one of the paper's figures (3, 4, 7, 8, 9, 10, 11, 12)
``zoo``           print the Table 1 model zoo
``train``         train the real NumPy transformer under any checkpoint engine
``compare-real``  run the real trainer under all four engines; print blocked-time table
``replay``        replay a failure trace against engine × store configs; print
                  per-config goodput / lost-work / restart-latency table
``list``          list the committed checkpoints in a store (tag, iteration,
                  bytes, saved parallel topology)
``reshape``       re-partition a committed checkpoint onto a new
                  (dp, pp, tp) topology offline (elastic restart)

``simulate``/``figure``/``zoo`` are thin wrappers over
:mod:`repro.training.runtime` and :mod:`repro.analysis.figures`; ``train`` and
``compare-real`` drive the real-mode pipeline through the engine registry
(:func:`repro.core.create_real_engine`); ``replay`` combines
:class:`repro.simulator.FailureTrace` with :func:`repro.analysis.replay_trace`;
``list``/``reshape`` sit on :mod:`repro.restart`
(:class:`~repro.restart.CheckpointLoader` /
:func:`~repro.restart.reshape_checkpoint`).

``train``, ``compare-real``, ``list``, and ``reshape`` all share one store
argument group (``--store``, tier/chunk-pool composition flags,
``--prefetch-depth``) defined once as an argparse parent parser.
"""

from __future__ import annotations

import argparse
import sys
import tempfile
from typing import List, Optional

from .analysis import (
    compare_real_engines,
    comparison_table_rows,
    dp_sweep_rows,
    figure3_checkpoint_sizes,
    figure4_iteration_phases,
    figure7_8_model_size_sweep,
    figure7_rows,
    figure8_rows,
    figure9_10_dp_sweep,
    figure11_12_frequency_sweep,
    format_table,
    frequency_sweep_rows,
    run_real_engine,
    table1_model_zoo,
)
from .checkpoint import ENGINE_NAMES
from .config import CheckpointPolicy
from .core import available_real_engines, canonical_engine_name, resolve_real_engine_class
from .exceptions import ConfigurationError
from .io import STORE_NAMES, canonical_store_name
from .model import MODEL_SIZES
from .training import simulate_run


def _engine_name(value: str) -> str:
    """argparse type: validate a real-mode engine name against the live registry.

    Resolution goes through :func:`repro.core.resolve_real_engine_class`, so
    aliases canonicalize, custom ``register_real_engine`` names stay
    selectable, and an unknown name fails fast here — with the list of valid
    names — instead of surfacing as a deep registry error mid-run.
    """
    try:
        resolve_real_engine_class(value)
    except ConfigurationError as exc:
        raise argparse.ArgumentTypeError(
            f"{exc} (registered engines: {available_real_engines()})") from exc
    try:
        return canonical_engine_name(value)
    except ConfigurationError:
        return value.strip().lower()  # custom engine under a non-canonical name


def _sim_engine_name(value: str) -> str:
    """argparse type: validate a name against the *simulated* engine registry."""
    from .checkpoint.factory import resolve_engine_class

    try:
        resolve_engine_class(value)
    except ConfigurationError as exc:
        raise argparse.ArgumentTypeError(str(exc)) from exc
    return value.strip().lower()


def _store_name(value: str) -> str:
    """argparse type: validate a shard-store backend name against the registry."""
    try:
        return canonical_store_name(value)
    except ConfigurationError as exc:
        raise argparse.ArgumentTypeError(str(exc)) from exc


def _positive_int(value: str) -> int:
    """argparse type: a strictly positive integer (worker counts)."""
    number = int(value)
    if number <= 0:
        raise argparse.ArgumentTypeError(f"must be a positive integer (got {value})")
    return number


def _watermark(value: str) -> int:
    """argparse type: an eviction watermark (>= 0, or -1 for 'never evict')."""
    number = int(value)
    if number < -1:
        raise argparse.ArgumentTypeError(
            f"must be >= 0, or -1 to disable eviction (got {value})")
    return number


def _nonneg_int(value: str) -> int:
    """argparse type: an integer >= 0 (retry counts)."""
    number = int(value)
    if number < 0:
        raise argparse.ArgumentTypeError(f"must be >= 0 (got {value})")
    return number


def _nonneg_float(value: str) -> float:
    """argparse type: a float >= 0 (backoff delays)."""
    number = float(value)
    if number < 0:
        raise argparse.ArgumentTypeError(f"must be >= 0 (got {value})")
    return number


def _engine_or_all(value: str) -> str:
    """argparse type: an engine name, or the literal ``all``."""
    if value.strip().lower() == "all":
        return "all"
    return _engine_name(value)


def _store_or_all(value: str) -> str:
    """argparse type: a store name, or the literal ``all``."""
    if value.strip().lower() == "all":
        return "all"
    return _store_name(value)


def _store_parent() -> argparse.ArgumentParser:
    """Parent parser carrying the shard-store argument group.

    Defined once and attached via ``parents=[...]`` to every subcommand that
    opens a store (``train``, ``compare-real``, ``list``, ``reshape``), so a
    new store-touching subcommand gets the full backend/composition/restore
    surface — and any new store flag reaches all of them — for free.
    """
    parent = argparse.ArgumentParser(add_help=False)
    group = parent.add_argument_group("shard store")
    group.add_argument("--store", type=_store_name,
                       default="file", metavar="|".join(STORE_NAMES),
                       help="shard store backend: 'file' (POSIX directory), "
                            "'object' (in-memory S3-like, one part per key), "
                            "'tiered' (fast tier + async drain to a slow "
                            "tier), 'cas' (content-addressed chunks with "
                            "namespaces + dedup), or any register_store() "
                            "name")
    group.add_argument("--tiers", default=None, metavar="SPEC",
                       help="tiered only: N-level tier chain spec, "
                            "'name:backend[:root][:capacity[@watermark]]' "
                            "per level, comma-separated (e.g. "
                            "'nvme:file:/a:50GiB,pfs:file:/b,object:object'); "
                            "replaces --fast-store/--slow-store")
    group.add_argument("--fast-store", type=_store_name, default="file",
                       metavar="NAME",
                       help="tiered only: backend of the fast tier "
                            "(default: file)")
    group.add_argument("--slow-store", type=_store_name, default="object",
                       metavar="NAME",
                       help="tiered only: backend of the slow tier "
                            "(default: object)")
    group.add_argument("--drain-workers", type=_positive_int, default=None,
                       help="tiered only: background workers draining "
                            "committed checkpoints to the slow tier "
                            "(default: policy default)")
    group.add_argument("--keep-local-latest", type=_watermark, default=None,
                       help="tiered only: newest replicated checkpoints "
                            "kept on the fast tier; older ones are evicted "
                            "(-1 disables eviction; default: policy default)")
    group.add_argument("--drain-retries", type=_nonneg_int, default=None,
                       help="tiered only: retries per drain on transient "
                            "slow-tier failures, with exponential backoff "
                            "(0 disables; default: policy default)")
    group.add_argument("--drain-backoff", type=_nonneg_float, default=None,
                       help="tiered only: base backoff seconds between "
                            "drain retries (attempt k sleeps backoff*2^k; "
                            "default: policy default)")
    group.add_argument("--inner-store", type=_store_name, default="file",
                       metavar="NAME",
                       help="cas only: backend holding the shared chunk "
                            "pool (default: file)")
    group.add_argument("--namespace", default=None, metavar="JOB",
                       help="cas only: job namespace scoping tags, "
                            "manifests, and quotas over the shared chunk "
                            "pool (default: 'default')")
    group.add_argument("--incremental", action="store_true",
                       help="cas only: incremental checkpoints — unchanged "
                            "shards are recorded by reference to the "
                            "previous committed checkpoint, only changed "
                            "chunks are uploaded")
    group.add_argument("--prefetch-depth", type=int, default=None,
                       help="restore-side prefetch workers fetching+validating "
                            "shard parts ahead of deserialization "
                            "(0 = auto from measured timings, 1 = serial; "
                            "default: policy default)")
    return parent


def _build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(prog="repro", description=__doc__,
                                     formatter_class=argparse.RawDescriptionHelpFormatter)
    sub = parser.add_subparsers(dest="command", required=True)
    store_parent = _store_parent()

    def add_layout_args(cmd: argparse.ArgumentParser) -> None:
        cmd.add_argument("--shards-per-rank", type=int, default=1,
                         help="spread each rank's state over N shard files "
                              "(multi-shard layout; 1 = classic single shard)")
        cmd.add_argument("--capture-streams", type=int, default=1,
                         help="concurrent snapshot capture streams feeding the "
                              "shard-set (DataStates engine)")

    simulate = sub.add_parser("simulate", help="simulate one training run")
    simulate.add_argument("--model", choices=MODEL_SIZES, default="13B")
    # No argparse choices= on engine/store flags anywhere: the type
    # functions validate against the live registries, so custom
    # register_*() names stay selectable and unknown names fail fast with
    # the registry's own error message.
    simulate.add_argument("--engine", type=_sim_engine_name,
                          default="datastates", metavar="|".join(ENGINE_NAMES))
    simulate.add_argument("--iterations", type=int, default=5)
    simulate.add_argument("--checkpoint-interval", type=int, default=1)
    simulate.add_argument("--data-parallel", type=int, default=1)
    add_layout_args(simulate)

    figure = sub.add_parser("figure", help="regenerate one paper figure")
    figure.add_argument("number", choices=["3", "4", "7", "8", "9", "10", "11", "12"])
    figure.add_argument("--iterations", type=int, default=None,
                        help="override the iteration count (smaller = faster)")

    sub.add_parser("zoo", help="print the Table 1 model zoo")

    def add_real_args(cmd: argparse.ArgumentParser) -> None:
        # Store flags come from the shared parent parser (_store_parent);
        # only the trainer-shape knobs live here.
        cmd.add_argument("--iterations", type=int, default=4)
        cmd.add_argument("--checkpoint-interval", type=int, default=1)
        cmd.add_argument("--hidden-size", type=int, default=128)
        cmd.add_argument("--layers", type=int, default=2)
        cmd.add_argument("--workdir", default=None,
                         help="checkpoint directory (default: a fresh temp dir)")
        add_layout_args(cmd)

    train = sub.add_parser(
        "train", help="train the real NumPy transformer under one engine",
        parents=[store_parent])
    train.add_argument("--engine", type=_engine_name,
                       default="datastates", metavar="|".join(ENGINE_NAMES))
    add_real_args(train)

    compare = sub.add_parser(
        "compare-real",
        help="run the real trainer under all four engines and compare stalls",
        parents=[store_parent])
    compare.add_argument("--engines", nargs="*", type=_engine_name,
                         default=None, metavar="|".join(ENGINE_NAMES),
                         help="subset of engines (default: all four)")
    add_real_args(compare)

    listing = sub.add_parser(
        "list", help="list committed checkpoints in a store",
        parents=[store_parent])
    listing.add_argument("--workdir", required=True,
                         help="checkpoint directory (the store root)")

    reshape = sub.add_parser(
        "reshape",
        help="re-partition a committed checkpoint onto a new (dp, pp, tp) "
             "topology offline",
        parents=[store_parent])
    reshape.add_argument("--workdir", required=True,
                         help="source checkpoint directory (the store root)")
    reshape.add_argument("--tag", default=None,
                         help="source checkpoint tag "
                              "(default: latest committed)")
    reshape.add_argument("--target-dp", type=_positive_int, required=True,
                         help="target data-parallel degree")
    reshape.add_argument("--target-pp", type=_positive_int, default=1,
                         help="target pipeline-parallel degree (default: 1)")
    reshape.add_argument("--target-tp", type=_positive_int, default=1,
                         help="target tensor-parallel degree (default: 1)")
    reshape.add_argument("--target-shards-per-rank", type=_positive_int,
                         default=1,
                         help="shards per rank of the reshaped checkpoint "
                              "(default: 1)")
    reshape.add_argument("--out", default=None, metavar="DIR",
                         help="destination directory (default: write the "
                              "reshaped checkpoint into the source store)")
    reshape.add_argument("--out-store", type=_store_name, default=None,
                         metavar="NAME",
                         help="destination store backend (needs --out; "
                              "default: same backend as --store)")
    reshape.add_argument("--out-tag", default=None,
                         help="tag of the reshaped checkpoint "
                              "(default: '<tag>-<topology>')")
    reshape.add_argument("--engine", type=_engine_name, default="deepspeed",
                         metavar="|".join(ENGINE_NAMES),
                         help="engine used to write the reshaped checkpoint "
                              "(default: deepspeed)")
    reshape.add_argument("--no-validate", action="store_true",
                         help="skip checksum validation of the source shards")

    replay = sub.add_parser(
        "replay",
        help="replay a failure trace against engine × store configurations")
    replay.add_argument("--trace", default="mtbf",
                        help="'mtbf' to draw a trace from the MTBF model, or "
                             "the path of a recorded trace JSON "
                             "(FailureTrace.to_file format)")
    replay.add_argument("--engines", nargs="*", type=_engine_or_all,
                        default=None, metavar="all|" + "|".join(ENGINE_NAMES),
                        help="engines to replay (default/'all': every engine)")
    replay.add_argument("--stores", nargs="*", type=_store_or_all,
                        default=None, metavar="all|" + "|".join(STORE_NAMES),
                        help="stores to replay (default/'all': every store)")
    replay.add_argument("--model", choices=MODEL_SIZES, default="13B")
    replay.add_argument("--checkpoint-interval", type=_positive_int, default=5,
                        help="iterations between checkpoints")
    replay.add_argument("--data-parallel", type=_positive_int, default=1,
                        help="data-parallel degree of the calibration run")
    replay.add_argument("--nodes", type=_positive_int, default=512,
                        help="mtbf traces: fleet size in nodes "
                             "(4 GPUs/node on the Polaris platform)")
    replay.add_argument("--hours", type=_nonneg_float, default=24.0,
                        help="mtbf traces: trace horizon in hours")
    replay.add_argument("--node-mtbf-hours", type=_nonneg_float, default=20_000.0,
                        help="mtbf traces: per-node mean time between failures")
    replay.add_argument("--link-mtbf-hours", type=_nonneg_float, default=50_000.0,
                        help="mtbf traces: per-link mean time between failures")
    replay.add_argument("--seed", type=int, default=0,
                        help="mtbf traces: trace seed (same seed = same trace)")
    replay.add_argument("--save-trace", default=None, metavar="PATH",
                        help="also save the replayed trace as JSON (for "
                             "replaying the identical trace later)")
    return parser


def _layout_policy(args: argparse.Namespace,
                   host_buffer_size: Optional[int] = None) -> Optional[CheckpointPolicy]:
    """Build a policy only when a non-default layout/restore knob was given.

    ``host_buffer_size`` must always be pinned explicitly: the dataclass
    default (16 GB, the simulator's per-rank budget) would make a real-mode
    engine allocate a 16 GB pinned pool the moment any layout flag is used.
    """
    prefetch_depth = getattr(args, "prefetch_depth", None)
    drain_workers = getattr(args, "drain_workers", None)
    keep_local_latest = getattr(args, "keep_local_latest", None)
    drain_retries = getattr(args, "drain_retries", None)
    drain_backoff = getattr(args, "drain_backoff", None)
    incremental = getattr(args, "incremental", False)
    if (args.shards_per_rank == 1 and args.capture_streams == 1
            and prefetch_depth is None and drain_workers is None
            and keep_local_latest is None and drain_retries is None
            and drain_backoff is None and not incremental):
        return None
    from .core.base_engine import DEFAULT_HOST_BUFFER_SIZE

    overrides = {}
    if prefetch_depth is not None:
        overrides["prefetch_depth"] = prefetch_depth
    if incremental:
        overrides["incremental"] = True
    if drain_workers is not None:
        overrides["drain_workers"] = drain_workers
    if keep_local_latest is not None and keep_local_latest >= 0:
        # -1 (never evict) is a store-level mode with no policy encoding;
        # the store kwargs below carry it.
        overrides["keep_local_latest"] = keep_local_latest
    if drain_retries is not None:
        overrides["drain_retries"] = drain_retries
    if drain_backoff is not None:
        overrides["drain_backoff_s"] = drain_backoff
    return CheckpointPolicy(
        shards_per_rank=args.shards_per_rank,
        capture_streams=args.capture_streams,
        host_buffer_size=host_buffer_size or DEFAULT_HOST_BUFFER_SIZE,
        **overrides,
    )


def _store_kwargs(args: argparse.Namespace) -> Optional[dict]:
    """Store-composition kwargs from the CLI flags.

    Only the ``tiered`` backend takes tier-composition knobs and only the
    ``cas`` backend takes chunk-pool knobs; using either group with a
    different ``--store`` is almost certainly a mistake, so it fails fast
    here rather than being silently ignored.
    """
    tiered_flags = (args.fast_store != "file" or args.slow_store != "object"
                    or args.tiers is not None
                    or args.drain_workers is not None
                    or args.keep_local_latest is not None
                    or args.drain_retries is not None
                    or args.drain_backoff is not None)
    cas_flags = (args.inner_store != "file" or args.namespace is not None
                 or args.incremental)
    if args.store != "tiered" and tiered_flags:
        raise SystemExit(
            "--tiers/--fast-store/--slow-store/--drain-workers/"
            "--keep-local-latest/--drain-retries/--drain-backoff only apply "
            f"to --store tiered (got --store {args.store})")
    if args.store != "cas" and cas_flags:
        raise SystemExit(
            "--inner-store/--namespace/--incremental only apply to "
            f"--store cas (got --store {args.store})")
    if args.store == "cas":
        kwargs = {"inner": args.inner_store}
        if args.namespace is not None:
            kwargs["namespace"] = args.namespace
        return kwargs
    if args.store != "tiered":
        return None
    policy_defaults = CheckpointPolicy()
    keep = (policy_defaults.keep_local_latest if args.keep_local_latest is None
            else args.keep_local_latest)
    kwargs = {
        "fast_store": args.fast_store,
        "slow_store": args.slow_store,
        "drain_workers": (policy_defaults.drain_workers
                          if args.drain_workers is None else args.drain_workers),
        # -1 means "never evict" (the store's keep_local_latest=None mode).
        "keep_local_latest": None if keep == -1 else keep,
        "drain_retries": (policy_defaults.drain_retries
                          if args.drain_retries is None else args.drain_retries),
        "drain_backoff_s": (policy_defaults.drain_backoff_s
                            if args.drain_backoff is None else args.drain_backoff),
    }
    if args.tiers is not None:
        kwargs["tiers"] = args.tiers
    return kwargs


def _cmd_simulate(args: argparse.Namespace) -> int:
    from .config import RunConfig

    policy = _layout_policy(args,
                            host_buffer_size=RunConfig().host_buffer_per_rank)
    result = simulate_run(
        args.model, args.engine,
        data_parallel=args.data_parallel,
        iterations=args.iterations,
        checkpoint_interval=args.checkpoint_interval,
        policy=policy,
    )
    print(format_table([result.summary()], title="Simulated run"))
    return 0


def _cmd_figure(args: argparse.Namespace) -> int:
    number = args.number
    if number == "3":
        print(format_table(figure3_checkpoint_sizes(), title="Figure 3"))
    elif number == "4":
        rows = [{"model": size, **values} for size, values in figure4_iteration_phases().items()]
        print(format_table(rows, title="Figure 4"))
    elif number in ("7", "8"):
        iterations = args.iterations or 5
        results = figure7_8_model_size_sweep(iterations=iterations)
        rows = figure7_rows(results) if number == "7" else figure8_rows(results)
        print(format_table(rows, title=f"Figure {number}"))
    elif number in ("9", "10"):
        model = "13B" if number == "9" else "30B"
        iterations = args.iterations or 5
        results = figure9_10_dp_sweep(model, dp_degrees=(1, 2, 4, 8), iterations=iterations)
        print(format_table(dp_sweep_rows(model, results), title=f"Figure {number}"))
    else:
        model = "7B" if number == "11" else "13B"
        iterations = args.iterations or 50
        results = figure11_12_frequency_sweep(model, iterations=iterations)
        print(format_table(frequency_sweep_rows(model, results), title=f"Figure {number}"))
    return 0


def _cmd_zoo(_args: argparse.Namespace) -> int:
    print(format_table(table1_model_zoo(), title="Table 1 — model zoo"))
    return 0


def _real_workdir(args: argparse.Namespace) -> str:
    return args.workdir or tempfile.mkdtemp(prefix="repro-real-")


def _cmd_train(args: argparse.Namespace) -> int:
    workdir = _real_workdir(args)
    row = run_real_engine(
        args.engine, workdir,
        iterations=args.iterations, checkpoint_interval=args.checkpoint_interval,
        hidden_size=args.hidden_size, num_layers=args.layers,
        policy=_layout_policy(args), store_backend=args.store,
        store_kwargs=_store_kwargs(args),
    )
    print(format_table(comparison_table_rows([row]),
                       title=f"Real-mode training ({row['label']})"))
    print(f"checkpoints -> {row['checkpoint_dir']}")
    return 0


def _cmd_compare_real(args: argparse.Namespace) -> int:
    workdir = _real_workdir(args)
    rows = compare_real_engines(
        workdir, engines=args.engines,
        iterations=args.iterations, checkpoint_interval=args.checkpoint_interval,
        hidden_size=args.hidden_size, num_layers=args.layers,
        policy=_layout_policy(args), store_backend=args.store,
        store_kwargs=_store_kwargs(args),
    )
    print(format_table(
        comparison_table_rows(rows),
        title="Real-mode engines — training-visible checkpoint stall"))
    for row in rows:
        print(f"{row['engine']} checkpoints -> {row['checkpoint_dir']}")
    return 0


def _open_store(args: argparse.Namespace, workdir: str):
    from pathlib import Path

    from .io import create_store

    return create_store(args.store, root=Path(workdir),
                        **(_store_kwargs(args) or {}))


def _residency_cell(store, tag: str) -> Optional[str]:
    """Tier-residency display for one checkpoint, or None off tiered stores.

    ``all`` when the checkpoint has reached every level of the chain, else
    the ``+``-joined names of the levels holding a committed copy (e.g.
    ``nvme+pfs`` while the object level is still draining).
    """
    if not callable(getattr(store, "residency_names", None)):
        return None
    names = store.residency_names(tag)
    if not names:
        return "-"
    if names == store.level_names:
        return "all"
    return "+".join(names)


def _cmd_list(args: argparse.Namespace) -> int:
    from .restart import CheckpointLoader

    store = _open_store(args, args.workdir)
    loader = CheckpointLoader(store)
    infos = loader.committed_checkpoints()
    if not infos:
        print(f"no committed checkpoints in {args.workdir}")
        return 0
    rows = []
    for info in infos:
        row = {
            "tag": info.tag,
            "iteration": info.iteration,
            "world": info.world_size,
            "shards": info.num_shards,
            "MiB": round(info.total_bytes / 2**20, 3),
            # Pre-v4 checkpoints carry no saved layout; '-' (not an error)
            # keeps old stores listable.
            "topology": info.topology.describe() if info.topology else "-",
            "schema": f"v{info.version}",
        }
        residency = _residency_cell(store, info.tag)
        if residency is not None:
            row["tiers"] = residency
        rows.append(row)
    print(format_table(rows, title=f"Committed checkpoints — {args.workdir}"))
    return 0


def _cmd_reshape(args: argparse.Namespace) -> int:
    from pathlib import Path

    from .io import create_store
    from .restart import reshape_checkpoint
    from .serialization import CheckpointTopology

    if args.out is None and args.out_store is not None:
        raise SystemExit("--out-store needs --out (a destination directory)")
    source_store = _open_store(args, args.workdir)
    dest_store = None
    if args.out is not None:
        dest_store = create_store(args.out_store or args.store,
                                  root=Path(args.out))
    target = CheckpointTopology(
        data_parallel=args.target_dp,
        pipeline_parallel=args.target_pp,
        tensor_parallel=args.target_tp,
        shards_per_rank=args.target_shards_per_rank,
    )
    report = reshape_checkpoint(
        source_store, target,
        tag=args.tag, dest_store=dest_store, out_tag=args.out_tag,
        engine=args.engine, validate=not args.no_validate,
        prefetch_depth=args.prefetch_depth,
    )
    print(report.summary())
    return 0


def _cmd_replay(args: argparse.Namespace) -> int:
    from .analysis import replay_table_rows, replay_trace
    from .simulator import FailureTrace

    if args.trace == "mtbf":
        trace = FailureTrace.from_mtbf(
            nodes=args.nodes, horizon_hours=args.hours,
            node_mtbf_hours=args.node_mtbf_hours,
            link_mtbf_hours=args.link_mtbf_hours, seed=args.seed)
    else:
        trace = FailureTrace.from_file(args.trace)
    if args.save_trace:
        trace.to_file(args.save_trace)
    counts = trace.counts()
    mtbf = trace.mean_time_between_failures_s()
    print(f"trace: {len(trace)} failures over {trace.horizon_s / 3600.0:.1f} h "
          f"on {trace.nodes} nodes "
          f"({counts['node']} node, {counts['link']} link"
          + (f"; observed fleet MTBF {mtbf / 3600.0:.2f} h" if mtbf else "")
          + ")")
    rows = replay_trace(
        trace, engines=args.engines, stores=args.stores,
        model_size=args.model, checkpoint_interval=args.checkpoint_interval,
        data_parallel=args.data_parallel)
    print(format_table(
        replay_table_rows(rows),
        title="Failure-trace replay — goodput / lost work / restart latency"))
    return 0


def main(argv: Optional[List[str]] = None) -> int:
    """CLI entry point; returns a process exit code."""
    args = _build_parser().parse_args(argv)
    if args.command == "simulate":
        return _cmd_simulate(args)
    if args.command == "figure":
        return _cmd_figure(args)
    if args.command == "zoo":
        return _cmd_zoo(args)
    if args.command == "train":
        return _cmd_train(args)
    if args.command == "compare-real":
        return _cmd_compare_real(args)
    if args.command == "replay":
        return _cmd_replay(args)
    if args.command == "list":
        return _cmd_list(args)
    if args.command == "reshape":
        return _cmd_reshape(args)
    raise AssertionError("unreachable")  # pragma: no cover


if __name__ == "__main__":  # pragma: no cover
    sys.exit(main())
