"""Thread-safe pre-allocated pinned host staging pool.

In the original C++ engine the host staging buffer is allocated and
page-locked (``cudaHostRegister``) once at startup and reused for every
checkpoint, which removes the per-checkpoint allocation/pinning cost that
cripples the CheckFreq-style baseline.  Here the "pinned" buffer is a single
NumPy byte array allocated up front; allocations hand out ``memoryview``
slices of it managed by the FIFO ring allocator.

Threads that cannot be satisfied immediately block on a condition variable
until flushes retire older segments — this is exactly the back-pressure
behaviour described in §5.1 ("if the host memory that is reserved for
checkpointing is full, then the next checkpoint request needs to wait for
previous tensors to get evicted").
"""

from __future__ import annotations

import threading
from dataclasses import dataclass
from typing import Optional

import numpy as np

from ..exceptions import AllocationError
from .circular_buffer import CircularBufferManager, Segment


@dataclass
class HostAllocation:
    """A slice of the pinned pool handed to a producer (D2H copy)."""

    segment: Segment
    view: memoryview

    @property
    def size(self) -> int:
        """Size of the allocation in bytes."""
        return self.segment.size

    @property
    def offset(self) -> int:
        """Offset of the allocation inside the pool."""
        return self.segment.offset


class PinnedHostPool:
    """A fixed-capacity, reusable host staging buffer."""

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise AllocationError("pinned pool capacity must be positive")
        self.capacity = int(capacity)
        # One contiguous backing buffer, allocated once ("pre-pinned").
        self._backing = np.zeros(self.capacity, dtype=np.uint8)
        self._manager = CircularBufferManager(self.capacity)
        self._lock = threading.Lock()
        self._space_freed = threading.Condition(self._lock)
        self._closed = False
        self._peak_used = 0
        self._blocked_waits = 0

    # -- inspection ---------------------------------------------------------
    @property
    def used_bytes(self) -> int:
        """Bytes currently reserved."""
        with self._lock:
            return self._manager.used_bytes

    @property
    def peak_used_bytes(self) -> int:
        """High-water mark of reserved bytes since construction/reset."""
        with self._lock:
            return self._peak_used

    @property
    def blocked_waits(self) -> int:
        """How many times an allocation had to wait for flushes to free space
        (the back-pressure events of §5.1); benchmark/diagnostic counter."""
        with self._lock:
            return self._blocked_waits

    @property
    def free_bytes(self) -> int:
        """Bytes currently available."""
        with self._lock:
            return self._manager.free_bytes

    def view(self, offset: int, size: int) -> memoryview:
        """Raw view into the backing buffer (used by flush workers)."""
        if offset < 0 or offset + size > self.capacity:
            raise AllocationError(f"view [{offset}, {offset + size}) outside pool")
        return memoryview(self._backing)[offset : offset + size]

    # -- allocation -----------------------------------------------------------
    def allocate(self, size: int, blocking: bool = True, timeout: Optional[float] = None) -> HostAllocation:
        """Reserve ``size`` bytes.

        With ``blocking=True`` the call waits for flushes to release space
        (bounded by ``timeout`` seconds if given); otherwise it raises
        :class:`AllocationError` immediately when the pool is full.
        """
        if size > self.capacity:
            raise AllocationError(
                f"allocation of {size} bytes can never fit pool of {self.capacity} bytes"
            )
        if size == 0:
            # Zero-length tensors are legal (an uneven ZeRO partition can own
            # an empty slice); hand out an empty view without touching the
            # ring — blocking on space can never satisfy a 0-byte request.
            return HostAllocation(segment=Segment(ticket=-1, offset=0, size=0),
                                  view=memoryview(self._backing)[0:0])
        with self._lock:
            while True:
                if self._closed:
                    raise AllocationError("pinned pool is closed")
                try:
                    segment = self._manager.allocate(size)
                    break
                except AllocationError:
                    if not blocking:
                        raise
                    self._blocked_waits += 1
                    if not self._space_freed.wait(timeout=timeout):
                        raise AllocationError(
                            f"timed out waiting for {size} bytes of pinned host memory"
                        )
            if self._manager.used_bytes > self._peak_used:
                self._peak_used = self._manager.used_bytes
            view = memoryview(self._backing)[segment.offset : segment.offset + size]
            return HostAllocation(segment=segment, view=view)

    def free(self, allocation: HostAllocation) -> None:
        """Return an allocation to the pool and wake any blocked producers."""
        if allocation.segment.size == 0:
            return
        with self._lock:
            self._manager.free(allocation.segment)
            self._space_freed.notify_all()

    def close(self) -> None:
        """Fail all future allocations (used during shutdown)."""
        with self._lock:
            self._closed = True
            self._space_freed.notify_all()

    def reset(self) -> None:
        """Drop all reservations (between runs / tests)."""
        with self._lock:
            self._manager.reset()
            self._closed = False
            self._peak_used = 0
            self._blocked_waits = 0
            self._space_freed.notify_all()
