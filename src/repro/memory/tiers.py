"""Memory/storage tier descriptors.

The paper's multi-level checkpointing path is GPU HBM -> pinned host memory
-> node-local NVMe and/or the parallel file system.  :class:`TierSpec`
captures the properties of one tier that the checkpoint engines and the
simulator care about; :class:`TierKind` names the levels.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Dict, List

from ..config import PlatformSpec
from ..exceptions import ConfigurationError


class TierKind(enum.Enum):
    """The storage levels of the multi-level checkpoint hierarchy."""

    GPU_HBM = "gpu_hbm"
    HOST_PINNED = "host_pinned"
    HOST_PAGEABLE = "host_pageable"
    NODE_LOCAL_NVME = "node_local_nvme"
    PARALLEL_FS = "parallel_fs"

    @property
    def is_persistent(self) -> bool:
        """True for tiers that survive a node crash."""
        return self in (TierKind.NODE_LOCAL_NVME, TierKind.PARALLEL_FS)


@dataclass(frozen=True)
class TierSpec:
    """Capacity and bandwidth of one memory/storage tier."""

    kind: TierKind
    capacity: int
    write_bandwidth: float
    read_bandwidth: float
    #: Fixed latency per access (file open/metadata for storage tiers).
    access_latency: float = 0.0
    shared: bool = False

    def __post_init__(self) -> None:
        if self.capacity <= 0:
            raise ConfigurationError(f"{self.kind}: capacity must be positive")
        if self.write_bandwidth <= 0 or self.read_bandwidth <= 0:
            raise ConfigurationError(f"{self.kind}: bandwidths must be positive")
        if self.access_latency < 0:
            raise ConfigurationError(f"{self.kind}: latency must be >= 0")


def default_hierarchy(platform: PlatformSpec, host_buffer_size: int) -> Dict[TierKind, TierSpec]:
    """The per-rank tier hierarchy for a given platform.

    ``host_buffer_size`` is the portion of host memory reserved for pinned
    checkpoint staging (the engine's only configuration knob, §5.2).
    """
    if host_buffer_size <= 0:
        raise ConfigurationError("host_buffer_size must be positive")
    return {
        TierKind.GPU_HBM: TierSpec(
            kind=TierKind.GPU_HBM,
            capacity=platform.gpu_memory,
            write_bandwidth=platform.d2d_bandwidth,
            read_bandwidth=platform.d2d_bandwidth,
        ),
        TierKind.HOST_PINNED: TierSpec(
            kind=TierKind.HOST_PINNED,
            capacity=host_buffer_size,
            write_bandwidth=platform.d2h_pinned_bandwidth,
            read_bandwidth=platform.d2h_pinned_bandwidth,
        ),
        TierKind.HOST_PAGEABLE: TierSpec(
            kind=TierKind.HOST_PAGEABLE,
            capacity=platform.host_memory,
            write_bandwidth=platform.d2h_pageable_bandwidth,
            read_bandwidth=platform.d2h_pageable_bandwidth,
        ),
        TierKind.NODE_LOCAL_NVME: TierSpec(
            kind=TierKind.NODE_LOCAL_NVME,
            capacity=int(1.6e12),
            write_bandwidth=platform.nvme_write_bandwidth,
            read_bandwidth=platform.nvme_write_bandwidth,
            access_latency=1e-4,
        ),
        TierKind.PARALLEL_FS: TierSpec(
            kind=TierKind.PARALLEL_FS,
            capacity=int(1e15),
            write_bandwidth=platform.pfs_per_stream_bandwidth,
            read_bandwidth=platform.pfs_per_stream_bandwidth,
            access_latency=platform.pfs_file_latency,
            shared=True,
        ),
    }


def flush_order(hierarchy: Dict[TierKind, TierSpec]) -> List[TierKind]:
    """The order in which checkpoint data moves down the hierarchy."""
    order = [
        TierKind.GPU_HBM,
        TierKind.HOST_PINNED,
        TierKind.NODE_LOCAL_NVME,
        TierKind.PARALLEL_FS,
    ]
    return [kind for kind in order if kind in hierarchy]
