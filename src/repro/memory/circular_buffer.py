"""Circular buffer manager for the pre-allocated pinned host staging area.

The paper describes the host buffer as "managed through a simple lightweight
circular buffer manager, considering the producer-consumer pattern" (§5.3):
device-to-host copies *produce* contiguous regions at the head of the ring,
and flushes to persistent storage *consume* them from the tail, after which
the space becomes reusable.

The manager here is byte-granular, allocation-order aware, and intentionally
not thread safe — thread safety is added by the
:class:`~repro.memory.pinned_pool.PinnedHostPool` wrapper so the core logic
stays easy to property-test.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

from ..exceptions import AllocationError


@dataclass(frozen=True)
class Segment:
    """A contiguous reservation inside the ring: ``[offset, offset + size)``."""

    ticket: int
    offset: int
    size: int

    @property
    def end(self) -> int:
        """One past the last byte of the segment."""
        return self.offset + self.size


class CircularBufferManager:
    """A FIFO ring allocator over a fixed-size region.

    Allocations are carved at the write head; frees mark segments as retired
    but space is only reclaimed in allocation (FIFO) order, which matches the
    producer-consumer flow of checkpoint staging: shards are copied in order
    and flushed in order.  Allocations never wrap around the end of the
    region — if the tail gap is too small the allocation is placed at offset
    zero (provided that space is free), exactly like a ring used for DMA
    staging, so every segment stays contiguous.
    """

    def __init__(self, capacity: int) -> None:
        if capacity <= 0:
            raise AllocationError("circular buffer capacity must be positive")
        self.capacity = int(capacity)
        self._segments: List[Segment] = []          # live + retired, FIFO order
        self._retired: Dict[int, bool] = {}          # ticket -> retired flag
        self._next_ticket = 0
        self._head = 0                               # next write offset
        self._used = 0

    # -- inspection ---------------------------------------------------------
    @property
    def used_bytes(self) -> int:
        """Bytes currently reserved (live or retired-but-not-yet-reclaimed)."""
        return self._used

    @property
    def free_bytes(self) -> int:
        """Bytes available for new allocations (fragmentation ignored)."""
        return self.capacity - self._used

    @property
    def live_segments(self) -> int:
        """Number of segments that have not been freed yet."""
        return sum(1 for seg in self._segments if not self._retired[seg.ticket])

    def would_fit(self, size: int) -> bool:
        """Check whether :meth:`allocate` of ``size`` bytes would succeed now."""
        if size <= 0 or size > self.capacity:
            return False
        return self._contiguous_allocation_offset(size) is not None

    # -- allocation -----------------------------------------------------------
    def allocate(self, size: int) -> Segment:
        """Reserve ``size`` contiguous bytes at the ring head.

        Raises :class:`AllocationError` when the request cannot be satisfied
        (caller decides whether to wait for flushes to retire segments).
        """
        if size <= 0:
            raise AllocationError("allocation size must be positive")
        if size > self.capacity:
            raise AllocationError(
                f"allocation of {size} bytes exceeds buffer capacity {self.capacity}"
            )
        offset = self._contiguous_allocation_offset(size)
        if offset is None:
            raise AllocationError(
                f"circular buffer full: requested {size} bytes, "
                f"{self.free_bytes} free (fragmented)"
            )
        segment = Segment(ticket=self._next_ticket, offset=offset, size=size)
        self._next_ticket += 1
        self._segments.append(segment)
        self._retired[segment.ticket] = False
        self._head = (offset + size) % self.capacity if (offset + size) != self.capacity else 0
        self._used += size
        return segment

    def free(self, segment: Segment) -> None:
        """Mark a segment as no longer needed.

        Space is reclaimed lazily, oldest-first, so out-of-order frees are
        accepted but only become reusable once every older segment has also
        been freed.
        """
        if segment.ticket not in self._retired:
            raise AllocationError(f"segment {segment.ticket} is not managed by this buffer")
        if self._retired[segment.ticket]:
            raise AllocationError(f"segment {segment.ticket} freed twice")
        self._retired[segment.ticket] = True
        self._reclaim()

    def reset(self) -> None:
        """Drop every reservation (used between runs)."""
        self._segments.clear()
        self._retired.clear()
        self._head = 0
        self._used = 0

    # -- internals -------------------------------------------------------------
    def _reclaim(self) -> None:
        while self._segments and self._retired[self._segments[0].ticket]:
            segment = self._segments.pop(0)
            del self._retired[segment.ticket]
            self._used -= segment.size
        if not self._segments:
            self._head = 0

    def _live_intervals(self) -> List[Tuple[int, int]]:
        """Sorted occupied intervals ``[start, end)`` of all reserved segments."""
        intervals = sorted((seg.offset, seg.end) for seg in self._segments)
        return intervals

    def _contiguous_allocation_offset(self, size: int) -> Optional[int]:
        """Find where a new segment of ``size`` bytes would be placed, or None."""
        if not self._segments:
            return 0 if size <= self.capacity else None
        intervals = self._live_intervals()
        # Candidate 1: at the current head up to the next occupied byte / end.
        head = self._head
        next_occupied_after_head = self.capacity
        blocked = False
        for start, end in intervals:
            if start <= head < end:
                blocked = True
                break
            if start >= head:
                next_occupied_after_head = min(next_occupied_after_head, start)
        if not blocked and next_occupied_after_head - head >= size:
            return head
        # Candidate 2: wrap to offset zero, up to the first occupied byte.
        first_start = intervals[0][0]
        if first_start >= size and head != 0:
            # Only valid if offset 0 is not inside an occupied interval.
            inside = any(start <= 0 < end for start, end in intervals)
            if not inside:
                return 0
        return None
