"""Memory tiers, the circular staging-buffer allocator, and the pinned host pool."""

from .circular_buffer import CircularBufferManager, Segment
from .pinned_pool import HostAllocation, PinnedHostPool
from .tiers import TierKind, TierSpec, default_hierarchy, flush_order

__all__ = [
    "CircularBufferManager",
    "Segment",
    "PinnedHostPool",
    "HostAllocation",
    "TierKind",
    "TierSpec",
    "default_hierarchy",
    "flush_order",
]
