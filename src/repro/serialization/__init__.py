"""Checkpoint shard serialization: headers/offsets, streaming writer, reader, manifests."""

from .header import (
    MAGIC,
    ShardHeader,
    TensorEntry,
    build_header,
    decode_preamble,
    encode_preamble,
    preamble_size,
)
from .checksum import checksum_stream, crc32_combine, fold_section_checksums
from .manifest import CheckpointManifest, ShardRecord, checksum_bytes
from .reader import deserialize_state, peek_tensor_keys
from .writer import iter_shard_chunks, serialize_object, serialize_state

__all__ = [
    "crc32_combine",
    "fold_section_checksums",
    "checksum_stream",
    "MAGIC",
    "TensorEntry",
    "ShardHeader",
    "build_header",
    "encode_preamble",
    "decode_preamble",
    "preamble_size",
    "serialize_state",
    "iter_shard_chunks",
    "serialize_object",
    "deserialize_state",
    "peek_tensor_keys",
    "CheckpointManifest",
    "ShardRecord",
    "checksum_bytes",
]
