"""Checkpoint shard serialization: headers/offsets, streaming writer, reader, manifests."""

from .header import (
    MAGIC,
    ShardHeader,
    TensorEntry,
    build_header,
    decode_preamble,
    encode_preamble,
    preamble_size,
)
from .checksum import checksum_stream, crc32_combine, fold_section_checksums
from .manifest import (
    MANIFEST_VERSION,
    CheckpointManifest,
    CheckpointTopology,
    ShardRecord,
    TensorLayout,
    checksum_bytes,
)
from .reader import deserialize_rank_state, deserialize_state, peek_tensor_keys
from .shard_plan import (
    ShardPart,
    ShardPlan,
    iter_part_payloads,
    part_shard_name,
    plan_shards,
    serialize_part,
)
from .writer import iter_shard_chunks, serialize_object, serialize_state

__all__ = [
    "crc32_combine",
    "fold_section_checksums",
    "checksum_stream",
    "MAGIC",
    "MANIFEST_VERSION",
    "TensorEntry",
    "ShardHeader",
    "build_header",
    "encode_preamble",
    "decode_preamble",
    "preamble_size",
    "serialize_state",
    "iter_shard_chunks",
    "serialize_object",
    "deserialize_state",
    "deserialize_rank_state",
    "peek_tensor_keys",
    "CheckpointManifest",
    "CheckpointTopology",
    "TensorLayout",
    "ShardRecord",
    "ShardPart",
    "ShardPlan",
    "plan_shards",
    "part_shard_name",
    "serialize_part",
    "iter_part_payloads",
    "checksum_bytes",
]
