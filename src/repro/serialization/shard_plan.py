"""Multi-shard-per-rank checkpoint layout planning.

One rank's flattened state can be spread over several shard files instead of
the single ``rank{r}.shard`` of the original layout.  Spreading the state has
two payoffs, both measured by the I/O fast-path benchmark: the flush side
drives several file streams (and therefore several OSTs of a striped PFS)
concurrently, and the capture side can run one device-to-host copy stream per
shard so capture and flush overlap *per shard* rather than per rank.

:func:`plan_shards` partitions the tensors of a
:class:`~repro.tensor.FlattenedState` across ``shards_per_rank`` bins with a
greedy size-balanced binning (largest tensor first, always into the currently
lightest bin — the classic LPT rule, which bounds the spread between the
heaviest and lightest bin by the largest single tensor).  Each resulting
:class:`ShardPart` is a fully self-contained shard file: it keeps the
existing offset-addressed header (its entries additionally carry the tensor's
*global* index within the rank) and the complete skeleton, so the restore
path can rebuild the rank's state from the shard-set no matter which part it
reads first.

``shards_per_rank=1`` degenerates to exactly the original layout — same file
name, same header JSON (no ``index`` fields), same bytes.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Iterator, List, Sequence, Tuple

import numpy as np

from ..tensor import FlattenedState, TensorRef, tensor_payload_array
from .header import ShardHeader, TensorEntry, build_header, encode_preamble


def part_shard_name(base_name: str, part_index: int, num_parts: int) -> str:
    """File shard name of one part of a rank's shard-set.

    The single-part layout keeps the bare ``base_name`` so existing
    checkpoints, tooling, and tests see unchanged file names.
    """
    if num_parts == 1:
        return base_name
    return f"{base_name}-s{part_index:02d}"


@dataclass(frozen=True)
class ShardPart:
    """One shard file of a rank's shard-set: a subset of the rank's tensors."""

    name: str
    part_index: int
    num_parts: int
    header: ShardHeader
    #: Tensor references in header-entry order.
    tensors: Tuple[TensorRef, ...]
    #: Global index (within the rank's flattened state) of each tensor.
    global_indices: Tuple[int, ...]

    @property
    def payload_bytes(self) -> int:
        """Payload bytes this part stores."""
        return self.header.payload_bytes


@dataclass(frozen=True)
class ShardPlan:
    """How one rank's flattened state maps onto its shard files."""

    base_name: str
    skeleton: bytes
    num_tensors: int
    parts: Tuple[ShardPart, ...]

    @property
    def num_parts(self) -> int:
        """Number of shard files in the set."""
        return len(self.parts)

    @property
    def is_single(self) -> bool:
        """True for the backwards-compatible one-shard-per-rank layout."""
        return len(self.parts) == 1

    @property
    def total_payload_bytes(self) -> int:
        """Payload bytes across the whole shard-set."""
        return sum(part.payload_bytes for part in self.parts)

    def balance_spread(self) -> int:
        """Heaviest-minus-lightest part payload (bounded by the largest tensor)."""
        sizes = [part.payload_bytes for part in self.parts]
        return max(sizes) - min(sizes)


def _binned_indices(sizes: Sequence[int], bins: int) -> List[List[int]]:
    """Greedy LPT binning: global tensor indices per bin, balanced by bytes."""
    order = sorted(range(len(sizes)), key=lambda i: (-sizes[i], i))
    loads = [0] * bins
    assignment: List[List[int]] = [[] for _ in range(bins)]
    for index in order:
        target = min(range(bins), key=lambda b: (loads[b], b))
        assignment[target].append(index)
        loads[target] += sizes[index]
    # Within each bin, keep tensors in global order so offsets (and the file
    # bytes) are deterministic regardless of the size-sorted assignment order.
    for bin_indices in assignment:
        bin_indices.sort()
    return assignment


def plan_shards(flattened: FlattenedState, base_name: str,
                shards_per_rank: int = 1) -> ShardPlan:
    """Partition a flattened state across ``shards_per_rank`` shard files.

    The effective part count is clamped to the number of tensors (an empty
    state still produces one part so the skeleton is persisted), and
    ``shards_per_rank=1`` reproduces the original single-shard layout
    byte-for-byte: same name, same header (no ``index`` fields), same offsets.
    """
    if shards_per_rank < 1:
        shards_per_rank = 1
    skeleton = flattened.skeleton_bytes()
    num_tensors = len(flattened.tensors)
    effective = max(1, min(shards_per_rank, num_tensors))

    if effective == 1:
        header = build_header(flattened)
        part = ShardPart(
            name=part_shard_name(base_name, 0, 1),
            part_index=0,
            num_parts=1,
            header=header,
            tensors=tuple(flattened.tensors),
            global_indices=tuple(range(num_tensors)),
        )
        return ShardPlan(base_name=base_name, skeleton=skeleton,
                         num_tensors=num_tensors, parts=(part,))

    sizes = [ref.nbytes for ref in flattened.tensors]
    parts: List[ShardPart] = []
    for part_index, indices in enumerate(_binned_indices(sizes, effective)):
        entries: List[TensorEntry] = []
        offset = 0
        refs: List[TensorRef] = []
        for global_index in indices:
            ref = flattened.tensors[global_index]
            entries.append(
                TensorEntry(
                    key=ref.key or f"tensor_{global_index}",
                    dtype=ref.dtype,
                    shape=ref.shape,
                    offset=offset,
                    nbytes=ref.nbytes,
                    index=global_index,
                )
            )
            offset += ref.nbytes
            refs.append(ref)
        parts.append(
            ShardPart(
                name=part_shard_name(base_name, part_index, effective),
                part_index=part_index,
                num_parts=effective,
                header=ShardHeader(entries=tuple(entries), payload_bytes=offset),
                tensors=tuple(refs),
                global_indices=tuple(indices),
            )
        )
    return ShardPlan(base_name=base_name, skeleton=skeleton,
                     num_tensors=num_tensors, parts=tuple(parts))


def serialize_part(part: ShardPart, skeleton: bytes) -> bytes:
    """One-shot serialization of one shard-set part (blocking engines).

    For a single-part plan this produces exactly the bytes of
    :func:`~repro.serialization.serialize_state` on the whole state.
    """
    chunks: List[bytes] = [encode_preamble(part.header, skeleton)]
    for ref in part.tensors:
        array = np.ascontiguousarray(tensor_payload_array(ref))
        chunks.append(array.tobytes())
    return b"".join(chunks)


def iter_part_payloads(part: ShardPart) -> Iterator[Tuple[TensorEntry, np.ndarray]]:
    """Yield ``(entry, contiguous uint8 payload)`` pairs of one part."""
    for entry, ref in zip(part.header.entries, part.tensors):
        array = np.ascontiguousarray(tensor_payload_array(ref))
        yield entry, array.view(np.uint8).reshape(-1)
