"""Shard deserialization (restart path)."""

from __future__ import annotations

import pickle
from typing import Any, List

import numpy as np

from ..exceptions import SerializationError
from ..tensor import unflatten_state_dict
from .header import decode_preamble


def deserialize_state(raw: bytes) -> Any:
    """Rebuild the original nested state dict from shard-file bytes."""
    header, skeleton_bytes, payload_start = decode_preamble(raw)
    expected_end = payload_start + header.payload_bytes
    if len(raw) < expected_end:
        raise SerializationError(
            f"shard file truncated: expected {expected_end} bytes, got {len(raw)}"
        )
    try:
        skeleton = pickle.loads(skeleton_bytes)
    except Exception as exc:
        raise SerializationError(f"cannot unpickle shard skeleton: {exc}") from exc

    arrays: List[np.ndarray] = []
    for entry in header.entries:
        start = payload_start + entry.offset
        stop = start + entry.nbytes
        buffer = raw[start:stop]
        if len(buffer) != entry.nbytes:
            raise SerializationError(f"payload for {entry.key!r} is truncated")
        array = np.frombuffer(buffer, dtype=np.dtype(entry.dtype)).reshape(entry.shape).copy()
        arrays.append(array)
    return unflatten_state_dict(skeleton, arrays)


def peek_tensor_keys(raw: bytes) -> List[str]:
    """List the tensor keys stored in a shard without materialising payloads."""
    header, _skeleton, _payload_start = decode_preamble(raw)
    return [entry.key for entry in header.entries]
