"""Shard deserialization (restart path).

:func:`deserialize_state` accepts any bytes-like buffer — a ``bytes`` object
read the classic way, a ``memoryview``, or an ``mmap.mmap`` of the shard file
— and, with ``copy=False``, rebuilds every array as a zero-copy
``np.frombuffer`` view into that buffer.  The views keep the underlying
buffer alive, so an mmap-backed load never materialises a second full copy of
the shard in heap memory; pages stream in from the page cache on first
touch.  With ``copy=True`` (the default) each array is materialised
one-at-a-time into fresh writable memory, so peak extra heap usage is one
tensor, not one shard.
"""

from __future__ import annotations

import pickle
from typing import Any, List

import numpy as np

from ..exceptions import SerializationError
from ..tensor import unflatten_state_dict
from .header import decode_preamble


def deserialize_state(raw, copy: bool = True) -> Any:
    """Rebuild the original nested state dict from shard-file bytes.

    ``copy=False`` returns read-only array views backed by ``raw`` (opt-in
    zero-copy restore); the caller must keep the buffer open for as long as
    the arrays live.  ``copy=True`` returns independent writable arrays.
    """
    header, skeleton_bytes, payload_start = decode_preamble(raw)
    expected_end = payload_start + header.payload_bytes
    if len(raw) < expected_end:
        raise SerializationError(
            f"shard file truncated: expected {expected_end} bytes, got {len(raw)}"
        )
    try:
        skeleton = pickle.loads(skeleton_bytes)
    except Exception as exc:
        raise SerializationError(f"cannot unpickle shard skeleton: {exc}") from exc

    arrays: List[np.ndarray] = []
    for entry in header.entries:
        start = payload_start + entry.offset
        if start + entry.nbytes > expected_end:
            raise SerializationError(f"payload for {entry.key!r} is truncated")
        dtype = np.dtype(entry.dtype)
        count = entry.nbytes // dtype.itemsize
        array = np.frombuffer(raw, dtype=dtype, count=count, offset=start).reshape(entry.shape)
        if copy:
            array = array.copy()
        arrays.append(array)
    return unflatten_state_dict(skeleton, arrays)


def peek_tensor_keys(raw) -> List[str]:
    """List the tensor keys stored in a shard without materialising payloads."""
    header, _skeleton, _payload_start = decode_preamble(raw)
    return [entry.key for entry in header.entries]
