"""Shard deserialization (restart path).

:func:`deserialize_state` accepts any bytes-like buffer — a ``bytes`` object
read the classic way, a ``memoryview``, or an ``mmap.mmap`` of the shard file
— and, with ``copy=False``, rebuilds every array as a zero-copy
``np.frombuffer`` view into that buffer.  The views keep the underlying
buffer alive, so an mmap-backed load never materialises a second full copy of
the shard in heap memory; pages stream in from the page cache on first
touch.  With ``copy=True`` (the default) each array is materialised
one-at-a-time into fresh writable memory, so peak extra heap usage is one
tensor, not one shard.
"""

from __future__ import annotations

import pickle
from typing import Any, List, Sequence

import numpy as np

from ..exceptions import SerializationError
from ..tensor import unflatten_state_dict
from .header import decode_preamble


def deserialize_state(raw, copy: bool = True) -> Any:
    """Rebuild the original nested state dict from shard-file bytes.

    ``copy=False`` returns read-only array views backed by ``raw`` (opt-in
    zero-copy restore); the caller must keep the buffer open for as long as
    the arrays live.  ``copy=True`` returns independent writable arrays.
    """
    header, skeleton_bytes, payload_start = decode_preamble(raw)
    expected_end = payload_start + header.payload_bytes
    if len(raw) < expected_end:
        raise SerializationError(
            f"shard file truncated: expected {expected_end} bytes, got {len(raw)}"
        )
    try:
        skeleton = pickle.loads(skeleton_bytes)
    except Exception as exc:
        raise SerializationError(f"cannot unpickle shard skeleton: {exc}") from exc

    arrays: List[np.ndarray] = []
    for entry in header.entries:
        start = payload_start + entry.offset
        if start + entry.nbytes > expected_end:
            raise SerializationError(f"payload for {entry.key!r} is truncated")
        dtype = np.dtype(entry.dtype)
        count = entry.nbytes // dtype.itemsize
        array = np.frombuffer(raw, dtype=dtype, count=count, offset=start).reshape(entry.shape)
        if copy:
            array = array.copy()
        arrays.append(array)
    return unflatten_state_dict(skeleton, arrays)


def deserialize_rank_state(raws: Sequence[Any], copy: bool = True) -> Any:
    """Rebuild one rank's state from its (possibly multi-file) shard-set.

    ``raws`` holds the bytes-like buffers of every shard file of the set, in
    any order.  Multi-shard headers carry each tensor's global index, which is
    used to map payloads back onto the skeleton's placeholders; every part
    carries the full skeleton, so reassembly does not depend on which buffer
    is read first.  A single v1 buffer (no ``index`` fields) is delegated to
    :func:`deserialize_state` unchanged.
    """
    if not raws:
        raise SerializationError("cannot reassemble a rank from zero shard buffers")
    if len(raws) == 1:
        return deserialize_state(raws[0], copy=copy)

    skeleton: Any = None
    have_skeleton = False
    arrays_by_index: dict = {}
    for raw in raws:
        header, skeleton_bytes, payload_start = decode_preamble(raw)
        expected_end = payload_start + header.payload_bytes
        if len(raw) < expected_end:
            raise SerializationError(
                f"shard file truncated: expected {expected_end} bytes, got {len(raw)}"
            )
        if not have_skeleton:
            try:
                skeleton = pickle.loads(skeleton_bytes)
            except Exception as exc:
                raise SerializationError(f"cannot unpickle shard skeleton: {exc}") from exc
            have_skeleton = True
        for position, entry in enumerate(header.entries):
            global_index = entry.index if entry.index is not None else position
            if global_index in arrays_by_index:
                raise SerializationError(
                    f"tensor #{global_index} ({entry.key!r}) appears in more "
                    f"than one shard of the set"
                )
            start = payload_start + entry.offset
            if start + entry.nbytes > expected_end:
                raise SerializationError(f"payload for {entry.key!r} is truncated")
            dtype = np.dtype(entry.dtype)
            count = entry.nbytes // dtype.itemsize
            array = np.frombuffer(raw, dtype=dtype, count=count, offset=start).reshape(entry.shape)
            if copy:
                array = array.copy()
            arrays_by_index[global_index] = array

    total = (max(arrays_by_index) + 1) if arrays_by_index else 0
    missing = [i for i in range(total) if i not in arrays_by_index]
    if missing:
        raise SerializationError(
            f"shard-set is missing tensors {missing[:4]} of {total}"
        )
    arrays = [arrays_by_index[i] for i in range(total)]
    return unflatten_state_dict(skeleton, arrays)


def peek_tensor_keys(raw) -> List[str]:
    """List the tensor keys stored in a shard without materialising payloads."""
    header, _skeleton, _payload_start = decode_preamble(raw)
    return [entry.key for entry in header.entries]
