"""Shard serialization: turning a flattened state dict into file bytes.

Two paths are provided:

* :func:`serialize_state` — one-shot serialization to a single ``bytes``
  object (used by tests and the synchronous baseline engine).

* :func:`iter_shard_chunks` — a streaming generator that yields the shard
  file as a sequence of chunks whose payload portions are read *directly from
  the staging buffer views* handed in by the caller, so the flush worker can
  write to disk while later tensors are still being copied device-to-host —
  the real-mode realisation of "streamlined multi-level flushing".
"""

from __future__ import annotations

import pickle
from typing import Iterator, List, Sequence, Union

import numpy as np

from ..exceptions import SerializationError
from ..tensor import flatten_state_dict, tensor_payload_array
from .header import ShardHeader, build_header, encode_preamble


def serialize_state(state: object, chunk_size: int = 8 * 1024 * 1024) -> bytes:
    """Serialize an arbitrary nested state dict into shard-file bytes."""
    flattened = flatten_state_dict(state)
    header = build_header(flattened)
    skeleton = flattened.skeleton_bytes()
    parts: List[bytes] = [encode_preamble(header, skeleton)]
    for ref in flattened.tensors:
        array = np.ascontiguousarray(tensor_payload_array(ref))
        parts.append(array.tobytes())
    return b"".join(parts)


def iter_shard_chunks(
    header: ShardHeader,
    skeleton: bytes,
    payload_views: Sequence[memoryview],
    chunk_size: int = 8 * 1024 * 1024,
) -> Iterator[Union[bytes, memoryview]]:
    """Yield the shard file as byte chunks from pre-staged payload views.

    ``payload_views[i]`` must hold exactly the bytes of the i-th tensor entry
    of ``header`` (typically a slice of the pinned staging pool that a
    background copy has already filled).  Payload chunks are yielded as
    zero-copy ``memoryview`` slices of the staging buffer — the bytes go from
    pinned pool to kernel without an intermediate heap copy; consumers must
    finish with each chunk before requesting the next (file writes do).
    """
    if len(payload_views) != len(header.entries):
        raise SerializationError(
            f"{len(header.entries)} tensors in header but {len(payload_views)} payload views"
        )
    if chunk_size <= 0:
        raise SerializationError("chunk_size must be positive")
    yield encode_preamble(header, skeleton)
    for entry, view in zip(header.entries, payload_views):
        if len(view) != entry.nbytes:
            raise SerializationError(
                f"payload view for {entry.key!r} has {len(view)} bytes, expected {entry.nbytes}"
            )
        for start in range(0, entry.nbytes, chunk_size):
            stop = min(start + chunk_size, entry.nbytes)
            yield view[start:stop]


def serialize_object(obj: object) -> bytes:
    """Pickle small non-tensor metadata (used for manifests and rank metadata)."""
    try:
        return pickle.dumps(obj, protocol=pickle.HIGHEST_PROTOCOL)
    except Exception as exc:
        raise SerializationError(f"cannot pickle object: {exc}") from exc
