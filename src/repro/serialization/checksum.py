"""CRC32 utilities for out-of-order shard writes and mmap restores.

The parallel flush fast path writes a shard's tensors out of order with
``os.pwrite``, so the whole-file CRC32 can no longer be accumulated by
streaming the file front to back.  Instead each writer computes the CRC32 of
its own tensor payload (on the staged view, before the bytes leave host
memory) and the per-section checksums are folded together with
:func:`crc32_combine` — the same GF(2) matrix trick ``zlib`` uses internally
but does not expose to Python.  The folded result is bit-identical to
``zlib.crc32`` over the final file, so the restart path keeps validating
shards with a single linear pass regardless of the order they were written.
"""

from __future__ import annotations

import threading
import zlib
from typing import Iterable, Tuple

#: Reflected CRC-32 polynomial (the one zlib / PNG / gzip use).
_CRC32_POLY = 0xEDB88320


def _gf2_matrix_times(matrix: Tuple[int, ...], vector: int) -> int:
    """Multiply a GF(2) 32x32 matrix (tuple of column-wise rows) by a vector."""
    total = 0
    index = 0
    while vector:
        if vector & 1:
            total ^= matrix[index]
        vector >>= 1
        index += 1
    return total


def _gf2_matrix_square(matrix: Tuple[int, ...]) -> Tuple[int, ...]:
    """Square a GF(2) matrix: the operator for twice as many zero bytes."""
    return tuple(_gf2_matrix_times(matrix, row) for row in matrix)


def _zero_operator() -> Tuple[int, ...]:
    """The GF(2) operator that advances a CRC over one zero *byte*."""
    # Operator for one zero bit...
    rows = [_CRC32_POLY]
    row = 1
    for _ in range(31):
        rows.append(row)
        row <<= 1
    odd = tuple(rows)
    # ... squared three times: 1 bit -> 2 bits -> 4 bits -> 8 bits = 1 byte.
    for _ in range(3):
        odd = _gf2_matrix_square(odd)
    return odd


#: ``_ZERO_OPERATORS[k]`` advances a CRC over ``2**k`` zero bytes.  Computed
#: lazily and cached so every ``crc32_combine`` call is a few dozen 32-entry
#: matrix-vector products instead of fresh O(32^2) matrix squarings — the
#: fold of a many-tensor shard stays negligible next to the writes themselves.
_ZERO_OPERATORS = [_zero_operator()]
_ZERO_OPERATORS_LOCK = threading.Lock()


def _zero_operator_for_bit(bit: int) -> Tuple[int, ...]:
    if bit < len(_ZERO_OPERATORS):  # fast path: cache never shrinks
        return _ZERO_OPERATORS[bit]
    with _ZERO_OPERATORS_LOCK:
        while len(_ZERO_OPERATORS) <= bit:
            _ZERO_OPERATORS.append(_gf2_matrix_square(_ZERO_OPERATORS[-1]))
        return _ZERO_OPERATORS[bit]


def crc32_combine(crc1: int, crc2: int, len2: int) -> int:
    """Combine two CRC32s: ``crc32(a + b) == crc32_combine(crc32(a), crc32(b), len(b))``.

    Equivalent to zlib's (unexposed) ``crc32_combine``: ``crc1`` is advanced
    over ``len2`` virtual zero bytes using cached power-of-two zero-byte
    operators, then xor-ed with ``crc2``.  Runs in O(log len2).
    """
    if len2 < 0:
        raise ValueError("len2 must be >= 0")
    if len2 == 0:
        return crc1 & 0xFFFFFFFF
    crc1 &= 0xFFFFFFFF
    crc2 &= 0xFFFFFFFF
    bit = 0
    while len2:
        if len2 & 1:
            crc1 = _gf2_matrix_times(_zero_operator_for_bit(bit), crc1)
        len2 >>= 1
        bit += 1
    return (crc1 ^ crc2) & 0xFFFFFFFF


def fold_section_checksums(sections: Iterable[Tuple[int, int]], initial: int = 0) -> int:
    """Fold ``(crc, nbytes)`` sections (in file order) into one whole-file CRC32."""
    crc = initial & 0xFFFFFFFF
    for section_crc, nbytes in sections:
        crc = crc32_combine(crc, section_crc, nbytes)
    return crc


def checksum_stream(buffer, chunk_size: int = 8 * 1024 * 1024) -> int:
    """CRC32 of any buffer (bytes, memoryview, mmap) in bounded-memory chunks.

    Streaming over a ``memoryview`` keeps the pass zero-copy: an mmap-backed
    shard is checksummed straight out of the page cache without ever
    materialising a second heap copy of the file.
    """
    if chunk_size <= 0:
        raise ValueError("chunk_size must be positive")
    view = memoryview(buffer)
    crc = 0
    for start in range(0, len(view), chunk_size):
        crc = zlib.crc32(view[start : start + chunk_size], crc)
    return crc & 0xFFFFFFFF
