"""Checkpoint manifests — the commit record of the consolidation protocol.

A checkpoint directory is only considered valid once a manifest exists.  The
manifest is written exactly once, after every rank has voted that all of its
shards are durably persisted (two-phase commit, §5.1), and lists every shard
with its size and checksum so the restart path can detect truncation or
corruption.

Schema versions
---------------
* **v1** — one (or more, independently named) shard files per rank; each
  record is ``{rank, name, nbytes, checksum[, tensor_checksums]}``.
* **v2** — adds the multi-shard-per-rank layout: records belonging to a
  shard-set additionally carry ``group`` (the logical per-rank shard name,
  e.g. ``rank0``), ``part_index``, and ``num_parts``, and the manifest top
  level carries ``"version": 2``.  The version key (and the per-record
  fields) are only written when a shard-set is actually present, so
  single-shard checkpoints remain byte-identical to v1 manifests, and v1
  manifests parse unchanged (records simply have no shard-set fields).
* **v3** — content-addressed storage: records written through the CAS
  backend (:class:`~repro.io.CASStore`) additionally carry ``chunks``, an
  ordered list of ``[hash, nbytes]`` pairs naming the content-addressed
  chunks whose concatenation is the shard's byte stream.  The field is only
  present for CAS checkpoints, so v1/v2 manifests stay byte-identical and
  parse unchanged; the refcounting garbage collector rebuilds its chunk
  index from exactly these lists.
* **v4** — elastic restart: checkpoints saved with a declared parallel
  layout carry a top-level ``topology`` block
  (:class:`CheckpointTopology`): the (DP, PP, TP) grid the shards were
  written from, the ``shards_per_rank`` layout, the ZeRO stage, and — for
  elastic (reshapable) checkpoints — the per-tensor partition table
  ``[key, partition_axis, global_shape]`` that the reshaping restore path
  (:mod:`repro.restart.reshape`) uses to concat/split shards into a new
  topology.  The block is only written when a save declares its topology,
  so v1/v2/v3 manifests stay byte-identical and parse unchanged
  (``manifest.topology`` is simply ``None``).
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Dict, List, Mapping, Optional, Sequence, Tuple

from ..exceptions import ConsistencyError

#: Current manifest schema version (v2/v3/v4 keys are written only when
#: shard-sets / chunk lists / a topology block are actually present).
MANIFEST_VERSION = 4


@dataclass(frozen=True)
class TensorLayout:
    """How one global tensor is partitioned across the tensor-parallel group.

    ``partition_axis`` is the concat/split dimension (the Megatron layer
    concat-dim table: 0 for column-parallel, 1 for row-parallel, ...);
    ``None`` marks a tensor replicated across TP ranks.  ``shape`` is the
    *global* (unsharded) shape, which the reshape path needs to recover the
    per-rank slice shapes at any topology.
    """

    key: str
    partition_axis: Optional[int]
    shape: Tuple[int, ...]

    def to_json(self) -> List:
        return [self.key, self.partition_axis, list(self.shape)]

    @staticmethod
    def from_json(data: Sequence) -> "TensorLayout":
        key, axis, shape = data
        return TensorLayout(
            key=str(key),
            partition_axis=None if axis is None else int(axis),
            shape=tuple(int(dim) for dim in shape),
        )


@dataclass(frozen=True)
class CheckpointTopology:
    """The save-time parallel layout of a checkpoint (manifest schema v4).

    Records the (data, pipeline, tensor)-parallel grid the shards were
    written from plus, for elastic checkpoints, the ordered per-tensor
    partition table.  The table's order is the canonical global tensor order
    (the layer order), which the pipeline-stage rebalancing of a reshaping
    restore partitions contiguously.
    """

    data_parallel: int
    pipeline_parallel: int = 1
    tensor_parallel: int = 1
    shards_per_rank: int = 1
    zero_stage: int = 1
    #: Per-tensor partition table, in canonical (layer) order; ``None`` for
    #: topology-stamped checkpoints that are not elastically reshapable.
    tensors: Optional[Tuple[TensorLayout, ...]] = None

    def __post_init__(self) -> None:
        if (self.data_parallel <= 0 or self.pipeline_parallel <= 0
                or self.tensor_parallel <= 0):
            raise ConsistencyError("all topology degrees must be positive")
        if self.shards_per_rank <= 0:
            raise ConsistencyError("shards_per_rank must be positive")

    @property
    def world_size(self) -> int:
        """Total ranks of the grid (DP x PP x TP)."""
        return self.data_parallel * self.pipeline_parallel * self.tensor_parallel

    @property
    def grid(self) -> Tuple[int, int, int]:
        """The (dp, pp, tp) triple."""
        return (self.data_parallel, self.pipeline_parallel, self.tensor_parallel)

    def describe(self) -> str:
        """Compact display form, e.g. ``dp4xpp1xtp2``."""
        return (f"dp{self.data_parallel}xpp{self.pipeline_parallel}"
                f"xtp{self.tensor_parallel}")

    def layout_table(self) -> Mapping[str, TensorLayout]:
        """The partition table keyed by tensor name (insertion-ordered)."""
        if self.tensors is None:
            raise ConsistencyError(
                "checkpoint topology carries no per-tensor partition table; "
                "only elastic checkpoints can be reshaped")
        return {layout.key: layout for layout in self.tensors}

    def to_json(self) -> Dict:
        payload: Dict[str, object] = {
            "data_parallel": self.data_parallel,
            "pipeline_parallel": self.pipeline_parallel,
            "tensor_parallel": self.tensor_parallel,
            "shards_per_rank": self.shards_per_rank,
            "zero_stage": self.zero_stage,
        }
        if self.tensors is not None:
            payload["tensors"] = [layout.to_json() for layout in self.tensors]
        return payload

    @staticmethod
    def from_json(data: Dict) -> "CheckpointTopology":
        tensors = data.get("tensors")
        return CheckpointTopology(
            data_parallel=int(data["data_parallel"]),
            pipeline_parallel=int(data.get("pipeline_parallel", 1)),
            tensor_parallel=int(data.get("tensor_parallel", 1)),
            shards_per_rank=int(data.get("shards_per_rank", 1)),
            zero_stage=int(data.get("zero_stage", 1)),
            tensors=None if tensors is None
            else tuple(TensorLayout.from_json(item) for item in tensors),
        )


@dataclass(frozen=True)
class ShardRecord:
    """One shard's entry in the manifest."""

    rank: int
    name: str
    nbytes: int
    checksum: Optional[int] = None
    #: Per-tensor payload CRC32s, ordered like the shard header's tensor
    #: table.  Written by the parallel (out-of-order pwrite) flush path, which
    #: checksums each tensor on its staged view; the whole-file ``checksum``
    #: above is folded from these, and the restart path can use them to
    #: pinpoint which tensor of a corrupt shard went bad.
    tensor_checksums: Optional[Tuple[int, ...]] = None
    #: Logical shard-set this record belongs to (the rank's base shard name,
    #: e.g. ``rank0``) in the multi-shard-per-rank layout; ``None`` for
    #: standalone v1-style shards.
    group: Optional[str] = None
    #: Position of this shard within its set, and the set's size.
    part_index: Optional[int] = None
    num_parts: Optional[int] = None
    #: Content-addressed chunk list (schema v3): ordered ``(hash, nbytes)``
    #: pairs whose concatenation is this shard's byte stream.  ``None`` for
    #: whole-blob shards (every non-CAS backend).
    chunks: Optional[Tuple[Tuple[str, int], ...]] = None

    @property
    def in_shard_set(self) -> bool:
        """True when this record is one part of a multi-shard rank layout."""
        return self.group is not None and self.part_index is not None

    def to_json(self) -> Dict:
        """JSON-serialisable form."""
        payload = {"rank": self.rank, "name": self.name, "nbytes": self.nbytes, "checksum": self.checksum}
        if self.tensor_checksums is not None:
            payload["tensor_checksums"] = list(self.tensor_checksums)
        if self.group is not None:
            payload["group"] = self.group
        if self.part_index is not None:
            payload["part_index"] = self.part_index
        if self.num_parts is not None:
            payload["num_parts"] = self.num_parts
        if self.chunks is not None:
            payload["chunks"] = [[chunk_hash, int(nbytes)]
                                 for chunk_hash, nbytes in self.chunks]
        return payload

    @staticmethod
    def from_json(data: Dict) -> "ShardRecord":
        """Inverse of :meth:`to_json` (v1 records simply lack the set fields)."""
        tensor_checksums = data.get("tensor_checksums")
        chunks = data.get("chunks")
        return ShardRecord(
            rank=int(data["rank"]),
            name=str(data["name"]),
            nbytes=int(data["nbytes"]),
            checksum=None if data.get("checksum") is None else int(data["checksum"]),
            tensor_checksums=None if tensor_checksums is None
            else tuple(int(x) for x in tensor_checksums),
            group=None if data.get("group") is None else str(data["group"]),
            part_index=None if data.get("part_index") is None else int(data["part_index"]),
            num_parts=None if data.get("num_parts") is None else int(data["num_parts"]),
            chunks=None if chunks is None
            else tuple((str(chunk_hash), int(nbytes)) for chunk_hash, nbytes in chunks),
        )


@dataclass
class CheckpointManifest:
    """The global commit record of one checkpoint."""

    tag: str
    world_size: int
    iteration: int
    shards: List[ShardRecord] = field(default_factory=list)
    extra: Dict[str, object] = field(default_factory=dict)
    #: Save-time parallel layout (schema v4); ``None`` for checkpoints saved
    #: without a declared topology (every earlier release).
    topology: Optional[CheckpointTopology] = None

    def add_shard(self, record: ShardRecord) -> None:
        """Register one persisted shard."""
        self.shards.append(record)

    def shards_of_rank(self, rank: int) -> List[ShardRecord]:
        """Shards contributed by one rank."""
        return [record for record in self.shards if record.rank == rank]

    @property
    def version(self) -> int:
        """Schema version: 4 when a save-time topology block is present,
        else 3 once any record carries a content-addressed chunk list, else
        2 once any rank uses a multi-shard layout, else 1."""
        if self.topology is not None:
            return 4
        if any(r.chunks is not None for r in self.shards):
            return 3
        return 2 if any(r.in_shard_set for r in self.shards) else 1

    def shard_sets_of_rank(self, rank: int) -> Dict[str, List[ShardRecord]]:
        """One rank's shards keyed by logical shard-set, parts in order.

        Standalone (v1-style) records form singleton sets keyed by their file
        name; multi-shard records are grouped under their ``group`` name and
        sorted by ``part_index``.  The restore path validates that each set is
        complete before reassembling the rank's state from it.
        """
        sets: Dict[str, List[ShardRecord]] = {}
        for record in self.shards_of_rank(rank):
            sets.setdefault(record.group or record.name, []).append(record)
        for name, records in sets.items():
            records.sort(key=lambda r: (r.part_index if r.part_index is not None else 0, r.name))
            expected = records[0].num_parts
            if expected is not None:
                indices = [r.part_index for r in records]
                if len(records) != expected or indices != list(range(expected)):
                    raise ConsistencyError(
                        f"shard-set {name!r} of rank {rank} is incomplete: "
                        f"expected {expected} parts, found parts {indices}"
                    )
        return sets

    @property
    def total_bytes(self) -> int:
        """Aggregate checkpoint size recorded in the manifest."""
        return sum(record.nbytes for record in self.shards)

    def validate_complete(self) -> None:
        """Check that every rank contributed at least one shard."""
        ranks_present = {record.rank for record in self.shards}
        expected = set(range(self.world_size))
        missing = expected - ranks_present
        if missing:
            raise ConsistencyError(
                f"checkpoint {self.tag!r} is incomplete: missing shards from ranks {sorted(missing)}"
            )

    def to_json(self) -> Dict:
        """JSON-serialisable form written to ``manifest.json``.

        The ``version`` key is only emitted for v2+ manifests (shard-sets,
        chunk lists, or a topology block present), so single-shard
        checkpoints stay byte-identical to the manifests every earlier
        release wrote.
        """
        payload = {
            "tag": self.tag,
            "world_size": self.world_size,
            "iteration": self.iteration,
            "total_bytes": self.total_bytes,
            "shards": [record.to_json() for record in self.shards],
            "extra": dict(self.extra),
        }
        if self.topology is not None:
            payload["topology"] = self.topology.to_json()
        if self.version > 1:
            payload["version"] = self.version
        return payload

    @staticmethod
    def from_json(data: Dict) -> "CheckpointManifest":
        """Inverse of :meth:`to_json` (v1-v3 manifests simply lack the
        topology block)."""
        topology = data.get("topology")
        manifest = CheckpointManifest(
            tag=str(data["tag"]),
            world_size=int(data["world_size"]),
            iteration=int(data.get("iteration", -1)),
            extra=dict(data.get("extra", {})),
            topology=None if topology is None
            else CheckpointTopology.from_json(topology),
        )
        for item in data.get("shards", []):
            manifest.add_shard(ShardRecord.from_json(item))
        return manifest


def checksum_bytes(payload: bytes) -> int:
    """CRC32 checksum used in shard records (cheap, catches truncation/corruption)."""
    return zlib.crc32(payload) & 0xFFFFFFFF
