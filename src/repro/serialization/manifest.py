"""Checkpoint manifests — the commit record of the consolidation protocol.

A checkpoint directory is only considered valid once a manifest exists.  The
manifest is written exactly once, after every rank has voted that all of its
shards are durably persisted (two-phase commit, §5.1), and lists every shard
with its size and checksum so the restart path can detect truncation or
corruption.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Tuple

from ..exceptions import ConsistencyError


@dataclass(frozen=True)
class ShardRecord:
    """One shard's entry in the manifest."""

    rank: int
    name: str
    nbytes: int
    checksum: Optional[int] = None
    #: Per-tensor payload CRC32s, ordered like the shard header's tensor
    #: table.  Written by the parallel (out-of-order pwrite) flush path, which
    #: checksums each tensor on its staged view; the whole-file ``checksum``
    #: above is folded from these, and the restart path can use them to
    #: pinpoint which tensor of a corrupt shard went bad.
    tensor_checksums: Optional[Tuple[int, ...]] = None

    def to_json(self) -> Dict:
        """JSON-serialisable form."""
        payload = {"rank": self.rank, "name": self.name, "nbytes": self.nbytes, "checksum": self.checksum}
        if self.tensor_checksums is not None:
            payload["tensor_checksums"] = list(self.tensor_checksums)
        return payload

    @staticmethod
    def from_json(data: Dict) -> "ShardRecord":
        """Inverse of :meth:`to_json`."""
        tensor_checksums = data.get("tensor_checksums")
        return ShardRecord(
            rank=int(data["rank"]),
            name=str(data["name"]),
            nbytes=int(data["nbytes"]),
            checksum=None if data.get("checksum") is None else int(data["checksum"]),
            tensor_checksums=None if tensor_checksums is None
            else tuple(int(x) for x in tensor_checksums),
        )


@dataclass
class CheckpointManifest:
    """The global commit record of one checkpoint."""

    tag: str
    world_size: int
    iteration: int
    shards: List[ShardRecord] = field(default_factory=list)
    extra: Dict[str, object] = field(default_factory=dict)

    def add_shard(self, record: ShardRecord) -> None:
        """Register one persisted shard."""
        self.shards.append(record)

    def shards_of_rank(self, rank: int) -> List[ShardRecord]:
        """Shards contributed by one rank."""
        return [record for record in self.shards if record.rank == rank]

    @property
    def total_bytes(self) -> int:
        """Aggregate checkpoint size recorded in the manifest."""
        return sum(record.nbytes for record in self.shards)

    def validate_complete(self) -> None:
        """Check that every rank contributed at least one shard."""
        ranks_present = {record.rank for record in self.shards}
        expected = set(range(self.world_size))
        missing = expected - ranks_present
        if missing:
            raise ConsistencyError(
                f"checkpoint {self.tag!r} is incomplete: missing shards from ranks {sorted(missing)}"
            )

    def to_json(self) -> Dict:
        """JSON-serialisable form written to ``manifest.json``."""
        return {
            "tag": self.tag,
            "world_size": self.world_size,
            "iteration": self.iteration,
            "total_bytes": self.total_bytes,
            "shards": [record.to_json() for record in self.shards],
            "extra": dict(self.extra),
        }

    @staticmethod
    def from_json(data: Dict) -> "CheckpointManifest":
        """Inverse of :meth:`to_json`."""
        manifest = CheckpointManifest(
            tag=str(data["tag"]),
            world_size=int(data["world_size"]),
            iteration=int(data.get("iteration", -1)),
            extra=dict(data.get("extra", {})),
        )
        for item in data.get("shards", []):
            manifest.add_shard(ShardRecord.from_json(item))
        return manifest


def checksum_bytes(payload: bytes) -> int:
    """CRC32 checksum used in shard records (cheap, catches truncation/corruption)."""
    return zlib.crc32(payload) & 0xFFFFFFFF
