"""Shard file layout and header construction (phase 2 of §5.3).

A shard file produced by the real-mode engine has the layout::

    +--------------------+  offset 0
    | magic  (8 bytes)   |
    | header length (u64)|
    | header JSON        |   tensor table: key, dtype, shape, offset, nbytes
    | skeleton length u64|
    | skeleton pickle    |   the state dict with tensors replaced by indices
    | tensor payload 0   |   raw little-endian buffers, contiguous
    | tensor payload 1   |
    | ...                |
    +--------------------+

Offsets in the tensor table are relative to the start of the payload region,
so the header can be computed *before* any payload is copied — exactly what
lets the engine enqueue device-to-host transfers and file writes for all
tensors up front ("create a header by computing the file offsets for each
tensor/object marked for asynchronous transfer").
"""

from __future__ import annotations

import json
import struct
from dataclasses import dataclass
from typing import Dict, List, Optional, Tuple

import numpy as np

from ..exceptions import SerializationError
from ..tensor import FlattenedState

MAGIC = b"DSLLMCK1"
_U64 = struct.Struct("<Q")


@dataclass(frozen=True)
class TensorEntry:
    """One row of the shard header's tensor table."""

    key: str
    dtype: str
    shape: Tuple[int, ...]
    offset: int
    nbytes: int
    #: Global tensor index within the rank's flattened state.  Only written in
    #: multi-shard-per-rank layouts, where each shard file of the set holds a
    #: subset of the rank's tensors and the restore path must map payloads
    #: back to their skeleton placeholders.  ``None`` (the single-shard
    #: layout) keeps the header JSON byte-identical to the v1 layout.
    index: Optional[int] = None

    def to_json(self) -> Dict:
        """JSON-serialisable form."""
        payload = {
            "key": self.key,
            "dtype": self.dtype,
            "shape": list(self.shape),
            "offset": self.offset,
            "nbytes": self.nbytes,
        }
        if self.index is not None:
            payload["index"] = self.index
        return payload

    @staticmethod
    def from_json(data: Dict) -> "TensorEntry":
        """Inverse of :meth:`to_json`."""
        return TensorEntry(
            key=str(data["key"]),
            dtype=str(data["dtype"]),
            shape=tuple(int(x) for x in data["shape"]),
            offset=int(data["offset"]),
            nbytes=int(data["nbytes"]),
            index=None if data.get("index") is None else int(data["index"]),
        )


@dataclass(frozen=True)
class ShardHeader:
    """Header of one shard file."""

    entries: Tuple[TensorEntry, ...]
    payload_bytes: int

    def to_bytes(self) -> bytes:
        """Serialize the header table to JSON bytes."""
        payload = {
            "version": 1,
            "payload_bytes": self.payload_bytes,
            "tensors": [entry.to_json() for entry in self.entries],
        }
        return json.dumps(payload, sort_keys=True).encode("utf-8")

    @staticmethod
    def from_bytes(raw: bytes) -> "ShardHeader":
        """Parse a header table from JSON bytes."""
        try:
            data = json.loads(raw.decode("utf-8"))
        except (UnicodeDecodeError, json.JSONDecodeError) as exc:
            raise SerializationError(f"corrupt shard header: {exc}") from exc
        entries = tuple(TensorEntry.from_json(item) for item in data.get("tensors", []))
        return ShardHeader(entries=entries, payload_bytes=int(data.get("payload_bytes", 0)))


def build_header(flattened: FlattenedState) -> ShardHeader:
    """Compute payload offsets for every tensor of a flattened state dict."""
    entries: List[TensorEntry] = []
    offset = 0
    for ref in flattened.tensors:
        entries.append(
            TensorEntry(
                key=ref.key or f"tensor_{len(entries)}",
                dtype=ref.dtype,
                shape=ref.shape,
                offset=offset,
                nbytes=ref.nbytes,
            )
        )
        offset += ref.nbytes
    return ShardHeader(entries=tuple(entries), payload_bytes=offset)


def encode_preamble(header: ShardHeader, skeleton: bytes) -> bytes:
    """Magic + lengths + header JSON + skeleton, i.e. everything before payloads."""
    header_bytes = header.to_bytes()
    return b"".join(
        [MAGIC, _U64.pack(len(header_bytes)), header_bytes, _U64.pack(len(skeleton)), skeleton]
    )


def decode_preamble(raw) -> Tuple[ShardHeader, bytes, int]:
    """Parse the preamble; returns (header, skeleton bytes, payload start offset).

    ``raw`` may be any bytes-like object — ``bytes``, ``memoryview``, or an
    ``mmap.mmap`` of the shard file.  Only the (small) header and skeleton
    regions are ever copied out of the buffer; the tensor payload region is
    untouched, which is what keeps the mmap restore path zero-copy.
    """
    if len(raw) < len(MAGIC) + _U64.size:
        raise SerializationError("shard file too small to contain a header")
    if bytes(raw[: len(MAGIC)]) != MAGIC:
        raise SerializationError("bad magic: not a DataStates shard file")
    cursor = len(MAGIC)
    (header_len,) = _U64.unpack_from(raw, cursor)
    cursor += _U64.size
    if cursor + header_len > len(raw):
        raise SerializationError("truncated shard header")
    header = ShardHeader.from_bytes(bytes(raw[cursor : cursor + header_len]))
    cursor += header_len
    if cursor + _U64.size > len(raw):
        raise SerializationError("truncated shard skeleton length")
    (skeleton_len,) = _U64.unpack_from(raw, cursor)
    cursor += _U64.size
    if cursor + skeleton_len > len(raw):
        raise SerializationError("truncated shard skeleton")
    skeleton = bytes(raw[cursor : cursor + skeleton_len])
    cursor += skeleton_len
    return header, skeleton, cursor


def preamble_size(header: ShardHeader, skeleton: bytes) -> int:
    """Size in bytes of the preamble produced by :func:`encode_preamble`."""
    return len(MAGIC) + 2 * _U64.size + len(header.to_bytes()) + len(skeleton)
