"""Pipeline-stage partitioning.

The paper uses DeepSpeed's default scheme of "uniformly balancing the number
of trainable parameters on each pipeline stage" (§6.3).  Given the per-layer
parameter counts (including the embedding and final-norm pseudo-layers), we
compute the contiguous partition into ``num_stages`` groups that minimises
the largest group — the classic linear partitioning problem, solved here by
binary search over the bottleneck value with a greedy feasibility check.
"""

from __future__ import annotations

from typing import List, Sequence

from ..exceptions import ShardingError


def _feasible(weights: Sequence[int], num_stages: int, limit: int) -> bool:
    """Can ``weights`` be split into <= num_stages contiguous groups of sum <= limit?"""
    groups = 1
    current = 0
    for weight in weights:
        if weight > limit:
            return False
        if current + weight > limit:
            groups += 1
            current = weight
            if groups > num_stages:
                return False
        else:
            current += weight
    return True


def balanced_contiguous_partition(weights: Sequence[int], num_stages: int) -> List[List[int]]:
    """Split ``weights`` into ``num_stages`` contiguous index groups, minimising the max sum.

    Returns a list of index lists; every index appears exactly once and order
    is preserved.  Stages may be empty only when there are fewer items than
    stages.
    """
    if num_stages <= 0:
        raise ShardingError("num_stages must be positive")
    items = list(weights)
    if any(w < 0 for w in items):
        raise ShardingError("weights must be non-negative")
    if not items:
        return [[] for _ in range(num_stages)]
    if num_stages >= len(items):
        groups = [[i] for i in range(len(items))]
        groups.extend([] for _ in range(num_stages - len(items)))
        return groups

    low = max(items)
    high = sum(items)
    while low < high:
        mid = (low + high) // 2
        if _feasible(items, num_stages, mid):
            high = mid
        else:
            low = mid + 1
    bottleneck = low

    # Greedy assignment against the optimal bottleneck, but keep enough items
    # in reserve so that no trailing stage ends up empty.
    groups: List[List[int]] = []
    index = 0
    remaining_stages = num_stages
    n = len(items)
    for _stage in range(num_stages):
        group: List[int] = []
        total = 0
        remaining_items = n - index
        # Leave at least one item for each of the stages after this one.
        max_take = remaining_items - (remaining_stages - 1)
        while index < n and len(group) < max_take and (not group or total + items[index] <= bottleneck):
            group.append(index)
            total += items[index]
            index += 1
        if not group and index < n:
            group.append(index)
            index += 1
        groups.append(group)
        remaining_stages -= 1
    if index != n:
        # Put any stragglers on the last stage (cannot happen with a correct
        # bottleneck, but keeps the invariant "every index assigned" robust).
        groups[-1].extend(range(index, n))
    return groups


def stage_parameter_counts(layer_weights: Sequence[int], num_stages: int) -> List[int]:
    """Total parameters assigned to each pipeline stage."""
    groups = balanced_contiguous_partition(layer_weights, num_stages)
    weights = list(layer_weights)
    return [sum(weights[i] for i in group) for group in groups]


def partition_imbalance(layer_weights: Sequence[int], num_stages: int) -> float:
    """Max/mean ratio of the stage loads (1.0 == perfectly balanced)."""
    totals = stage_parameter_counts(layer_weights, num_stages)
    nonzero = [t for t in totals if t > 0]
    if not nonzero:
        return 1.0
    mean = sum(nonzero) / len(nonzero)
    return max(nonzero) / mean if mean > 0 else 1.0
