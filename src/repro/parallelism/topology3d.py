"""3D-parallel rank topology (data x pipeline x tensor).

Maps global ranks to (data, pipeline, tensor) coordinates and back, and
enumerates the communication groups each rank belongs to.  The ordering
follows the Megatron/DeepSpeed convention used by the paper's setup: tensor
parallelism varies fastest (so a TP group always sits inside one node and can
use NVLink), then pipeline stages, then data-parallel replicas.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..exceptions import ShardingError


@dataclass(frozen=True)
class RankCoordinate:
    """Position of one rank in the 3D parallel grid."""

    data: int
    pipeline: int
    tensor: int


class ParallelTopology:
    """The (DP, PP, TP) grid and its rank numbering."""

    def __init__(self, data_parallel: int, pipeline_parallel: int, tensor_parallel: int) -> None:
        if data_parallel <= 0 or pipeline_parallel <= 0 or tensor_parallel <= 0:
            raise ShardingError("all parallelism degrees must be positive")
        self.data_parallel = data_parallel
        self.pipeline_parallel = pipeline_parallel
        self.tensor_parallel = tensor_parallel

    # -- sizes ----------------------------------------------------------------
    @property
    def world_size(self) -> int:
        """Total number of ranks."""
        return self.data_parallel * self.pipeline_parallel * self.tensor_parallel

    @property
    def ranks_per_replica(self) -> int:
        """Ranks used by one model replica (PP x TP)."""
        return self.pipeline_parallel * self.tensor_parallel

    # -- mapping ------------------------------------------------------------------
    def coordinate(self, global_rank: int) -> RankCoordinate:
        """Decompose a global rank into its (data, pipeline, tensor) coordinate."""
        if not (0 <= global_rank < self.world_size):
            raise ShardingError(f"rank {global_rank} outside world of size {self.world_size}")
        tensor = global_rank % self.tensor_parallel
        pipeline = (global_rank // self.tensor_parallel) % self.pipeline_parallel
        data = global_rank // (self.tensor_parallel * self.pipeline_parallel)
        return RankCoordinate(data=data, pipeline=pipeline, tensor=tensor)

    def global_rank(self, coord: RankCoordinate) -> int:
        """Compose a global rank from a coordinate."""
        if not (0 <= coord.data < self.data_parallel):
            raise ShardingError(f"data coordinate {coord.data} out of range")
        if not (0 <= coord.pipeline < self.pipeline_parallel):
            raise ShardingError(f"pipeline coordinate {coord.pipeline} out of range")
        if not (0 <= coord.tensor < self.tensor_parallel):
            raise ShardingError(f"tensor coordinate {coord.tensor} out of range")
        return (
            coord.data * self.pipeline_parallel * self.tensor_parallel
            + coord.pipeline * self.tensor_parallel
            + coord.tensor
        )

    def all_coordinates(self) -> List[RankCoordinate]:
        """Coordinates of every rank in global-rank order."""
        return [self.coordinate(rank) for rank in range(self.world_size)]

    # -- groups ----------------------------------------------------------------------
    def tensor_group(self, global_rank: int) -> List[int]:
        """Ranks sharing this rank's tensor-parallel group (same DP and PP index)."""
        coord = self.coordinate(global_rank)
        return [
            self.global_rank(RankCoordinate(coord.data, coord.pipeline, t))
            for t in range(self.tensor_parallel)
        ]

    def pipeline_group(self, global_rank: int) -> List[int]:
        """Ranks forming this rank's pipeline (same DP and TP index)."""
        coord = self.coordinate(global_rank)
        return [
            self.global_rank(RankCoordinate(coord.data, p, coord.tensor))
            for p in range(self.pipeline_parallel)
        ]

    def data_group(self, global_rank: int) -> List[int]:
        """Ranks holding the same model shard across data-parallel replicas."""
        coord = self.coordinate(global_rank)
        return [
            self.global_rank(RankCoordinate(d, coord.pipeline, coord.tensor))
            for d in range(self.data_parallel)
        ]

    def describe(self) -> Dict[str, int]:
        """Summary used by reports."""
        return {
            "data_parallel": self.data_parallel,
            "pipeline_parallel": self.pipeline_parallel,
            "tensor_parallel": self.tensor_parallel,
            "world_size": self.world_size,
        }
