"""ZeRO stage-1 optimizer-state partitioning.

Under ZeRO-1 (the configuration the paper restricts itself to, §2.5) the
Adam optimizer state of each model shard is partitioned across the
data-parallel replicas: every DP rank owns ``1/DP`` of the optimizer state of
the model shard it holds, and — following the default DeepSpeed checkpoint
layout of Figure 2(d) — also checkpoints only ``1/DP`` of the (otherwise
replicated) model weights.  This is what makes the per-GPU checkpoint size
shrink linearly with the DP degree (the dashed red lines in Figures 9/10)
while the aggregate checkpoint size stays constant.

This module also provides a *real* partitioner over flat parameter dicts so
the real-mode engine can exercise the same layout on actual NumPy arrays.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List, Sequence, Tuple

import numpy as np

from ..exceptions import ShardingError


@dataclass(frozen=True)
class ZeroPartition:
    """The slice of the flattened optimizer state owned by one DP rank."""

    rank: int
    start: int
    stop: int

    @property
    def numel(self) -> int:
        """Number of scalar elements owned by this rank."""
        return self.stop - self.start


def partition_elements(total_elements: int, data_parallel: int) -> List[ZeroPartition]:
    """Split ``total_elements`` scalars into DP contiguous, near-equal slices."""
    if total_elements < 0:
        raise ShardingError("total_elements must be >= 0")
    if data_parallel <= 0:
        raise ShardingError("data_parallel must be positive")
    base, remainder = divmod(total_elements, data_parallel)
    partitions: List[ZeroPartition] = []
    cursor = 0
    for rank in range(data_parallel):
        size = base + (1 if rank < remainder else 0)
        partitions.append(ZeroPartition(rank=rank, start=cursor, stop=cursor + size))
        cursor += size
    return partitions


def partition_bytes(total_bytes: int, data_parallel: int) -> List[int]:
    """Byte counts of each DP rank's optimizer/model checkpoint partition."""
    return [p.numel for p in partition_elements(total_bytes, data_parallel)]


# ---------------------------------------------------------------------------
# Real partitioning of flat parameter dicts (used by the real-mode trainer)
# ---------------------------------------------------------------------------


@dataclass(frozen=True)
class FlatSlice:
    """Where one parameter tensor lands inside the flattened buffer."""

    name: str
    start: int
    stop: int
    shape: Tuple[int, ...]
    dtype: str


def flatten_parameters(params: Dict[str, np.ndarray]) -> Tuple[np.ndarray, List[FlatSlice]]:
    """Concatenate all parameters into one 1-D float64 buffer plus a layout map."""
    slices: List[FlatSlice] = []
    chunks: List[np.ndarray] = []
    cursor = 0
    for name in sorted(params):
        array = params[name]
        flat = np.asarray(array, dtype=np.float64).reshape(-1)
        slices.append(
            FlatSlice(name=name, start=cursor, stop=cursor + flat.size,
                      shape=tuple(array.shape), dtype=str(array.dtype))
        )
        chunks.append(flat)
        cursor += flat.size
    if chunks:
        buffer = np.concatenate(chunks)
    else:
        buffer = np.zeros(0, dtype=np.float64)
    return buffer, slices


def unflatten_parameters(buffer: np.ndarray, slices: Sequence[FlatSlice]) -> Dict[str, np.ndarray]:
    """Rebuild the ``{name: array}`` dict from a flat buffer and its layout."""
    result: Dict[str, np.ndarray] = {}
    for entry in slices:
        segment = buffer[entry.start : entry.stop]
        result[entry.name] = segment.reshape(entry.shape).astype(entry.dtype)
    return result


def shard_flat_buffer(buffer: np.ndarray, data_parallel: int) -> List[np.ndarray]:
    """Split a flat buffer into the DP rank-owned slices (ZeRO-1 layout)."""
    partitions = partition_elements(buffer.size, data_parallel)
    return [buffer[p.start : p.stop].copy() for p in partitions]


def gather_flat_buffer(shards: Sequence[np.ndarray]) -> np.ndarray:
    """Reassemble the full flat buffer from rank-owned slices."""
    if not shards:
        return np.zeros(0, dtype=np.float64)
    return np.concatenate([np.asarray(s).reshape(-1) for s in shards])
