"""Per-rank checkpoint shard planning.

Combines the model accounting (:mod:`repro.model.transformer`), the pipeline
partitioning (:mod:`repro.parallelism.partition`), the tensor-parallel split,
and ZeRO-1 data-parallel partitioning (:mod:`repro.parallelism.zero`) into
the list of shard files each GPU writes during a checkpoint — the quantity
Figure 3 plots and the unit of work every checkpoint engine operates on
(Figure 5's ``ckpt(Layer 1) ... ckpt(Optimizer)``).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass, field
from typing import Dict, List

from ..exceptions import ShardingError
from ..model.llm_zoo import ModelRuntimeConfig
from ..model.transformer import MODEL_BYTES_PER_PARAM, OPTIMIZER_BYTES_PER_PARAM, TransformerConfig
from .partition import balanced_contiguous_partition
from .topology3d import ParallelTopology


class ShardKind(enum.Enum):
    """What a checkpoint shard contains."""

    MODEL_LAYER = "model_layer"
    OPTIMIZER = "optimizer"


@dataclass(frozen=True)
class CheckpointShard:
    """One shard file a rank writes during a checkpoint."""

    name: str
    nbytes: int
    kind: ShardKind

    def __post_init__(self) -> None:
        if self.nbytes < 0:
            raise ShardingError("shard size must be >= 0")


@dataclass
class RankCheckpointPlan:
    """Everything one rank contributes to a global checkpoint."""

    global_rank: int
    shards: List[CheckpointShard] = field(default_factory=list)

    @property
    def total_bytes(self) -> int:
        """Bytes this rank writes per checkpoint."""
        return sum(shard.nbytes for shard in self.shards)

    @property
    def num_shards(self) -> int:
        """Number of shard files this rank writes per checkpoint."""
        return len(self.shards)


@dataclass
class CheckpointPlan:
    """The global checkpoint layout for one (model, 3D-parallel) configuration."""

    model: TransformerConfig
    topology: ParallelTopology
    ranks: List[RankCheckpointPlan]

    @property
    def total_bytes(self) -> int:
        """Aggregate checkpoint size across all ranks."""
        return sum(rank.total_bytes for rank in self.ranks)

    @property
    def bytes_per_rank(self) -> List[int]:
        """Per-rank checkpoint sizes (for load-balance analysis, Figure 3)."""
        return [rank.total_bytes for rank in self.ranks]

    @property
    def max_rank_bytes(self) -> int:
        """Largest per-rank contribution (the straggler that gates throughput)."""
        return max(self.bytes_per_rank) if self.ranks else 0

    def load_imbalance(self) -> float:
        """Max/mean ratio of per-rank checkpoint sizes."""
        sizes = self.bytes_per_rank
        if not sizes or sum(sizes) == 0:
            return 1.0
        mean = sum(sizes) / len(sizes)
        return max(sizes) / mean

    def rank_plan(self, global_rank: int) -> RankCheckpointPlan:
        """Plan of a single rank."""
        return self.ranks[global_rank]


def build_checkpoint_plan(
    runtime: ModelRuntimeConfig,
    data_parallel: int = 1,
) -> CheckpointPlan:
    """Build the per-rank shard plan for one Table 1 configuration.

    Every rank writes one shard per transformer-layer group assigned to its
    pipeline stage (containing its tensor-parallel and data-parallel slice of
    the bf16 weights) plus one optimizer-state shard holding its ZeRO-1
    partition of the fp32 Adam state for those same layers.
    """
    if data_parallel <= 0:
        raise ShardingError("data_parallel must be positive")
    model = runtime.model
    topology = ParallelTopology(
        data_parallel=data_parallel,
        pipeline_parallel=runtime.pipeline_parallel,
        tensor_parallel=runtime.tensor_parallel,
    )
    layer_counts = model.layer_parameter_counts()
    stage_groups = balanced_contiguous_partition(layer_counts, runtime.pipeline_parallel)

    plans: List[RankCheckpointPlan] = []
    for global_rank in range(topology.world_size):
        coord = topology.coordinate(global_rank)
        group = stage_groups[coord.pipeline]
        plan = RankCheckpointPlan(global_rank=global_rank)
        stage_params = 0
        for layer_index in group:
            layer_params = layer_counts[layer_index]
            stage_params += layer_params
            shard_params = layer_params / runtime.tensor_parallel / data_parallel
            nbytes = int(round(shard_params * MODEL_BYTES_PER_PARAM))
            plan.shards.append(
                CheckpointShard(
                    name=f"rank{global_rank}_layer{layer_index}",
                    nbytes=nbytes,
                    kind=ShardKind.MODEL_LAYER,
                )
            )
        optimizer_params = stage_params / runtime.tensor_parallel / data_parallel
        plan.shards.append(
            CheckpointShard(
                name=f"rank{global_rank}_optimizer",
                nbytes=int(round(optimizer_params * OPTIMIZER_BYTES_PER_PARAM)),
                kind=ShardKind.OPTIMIZER,
            )
        )
        plans.append(plan)
    return CheckpointPlan(model=model, topology=topology, ranks=plans)


def checkpoint_size_summary(runtime: ModelRuntimeConfig, data_parallel: int = 1) -> Dict[str, float]:
    """Figure 3 style summary: aggregate and per-GPU checkpoint sizes in GB."""
    plan = build_checkpoint_plan(runtime, data_parallel=data_parallel)
    total_gb = plan.total_bytes / 1e9
    per_gpu = [size / 1e9 for size in plan.bytes_per_rank]
    return {
        "model": runtime.model.name,
        "num_gpus": plan.topology.world_size,
        "aggregate_checkpoint_gb": total_gb,
        "avg_checkpoint_per_gpu_gb": sum(per_gpu) / len(per_gpu),
        "max_checkpoint_per_gpu_gb": max(per_gpu),
        "load_imbalance": plan.load_imbalance(),
    }
