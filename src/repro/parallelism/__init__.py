"""3D parallelism: rank topology, pipeline partitioning, ZeRO-1 sharding, shard plans."""

from .partition import balanced_contiguous_partition, partition_imbalance, stage_parameter_counts
from .shards import (
    CheckpointPlan,
    CheckpointShard,
    RankCheckpointPlan,
    ShardKind,
    build_checkpoint_plan,
    checkpoint_size_summary,
)
from .topology3d import ParallelTopology, RankCoordinate
from .zero import (
    FlatSlice,
    ZeroPartition,
    flatten_parameters,
    gather_flat_buffer,
    partition_bytes,
    partition_elements,
    shard_flat_buffer,
    unflatten_parameters,
)

__all__ = [
    "ParallelTopology",
    "RankCoordinate",
    "balanced_contiguous_partition",
    "stage_parameter_counts",
    "partition_imbalance",
    "ZeroPartition",
    "partition_elements",
    "partition_bytes",
    "FlatSlice",
    "flatten_parameters",
    "unflatten_parameters",
    "shard_flat_buffer",
    "gather_flat_buffer",
    "CheckpointShard",
    "RankCheckpointPlan",
    "CheckpointPlan",
    "ShardKind",
    "build_checkpoint_plan",
    "checkpoint_size_summary",
]
