"""Global configuration objects.

Two kinds of configuration live here:

* :class:`PlatformSpec` — hardware constants of the training platform used by
  the discrete-event simulation (bandwidths, latencies, per-node GPU counts).
  ``PlatformSpec.polaris()`` is calibrated against the platform description in
  §6.1 of the paper and against the baseline (DeepSpeed synchronous
  checkpointing) behaviour reported in Figures 7, 8, 11 and 12.

* :class:`CheckpointPolicy` — user-facing knobs of the checkpoint engines
  (host buffer capacity, flush parallelism, checkpoint frequency).

Keeping every calibration constant in one documented place makes the
"paper value -> simulated value" mapping auditable.
"""

from __future__ import annotations

from dataclasses import dataclass, field, replace

from .exceptions import ConfigurationError
from .units import GB, gbps

#: Default restore-side prefetch depth — the one source of truth shared by
#: :class:`CheckpointPolicy` and loaders constructed without an explicit
#: ``prefetch_depth`` (:class:`repro.restart.CheckpointLoader`).
DEFAULT_PREFETCH_DEPTH = 4

#: Default number of background drain workers of the tiered store — shared
#: by :class:`CheckpointPolicy` and :class:`repro.io.TieredStore`.
DEFAULT_DRAIN_WORKERS = 2

#: Default tiered-store eviction watermark: how many of the newest
#: replicated checkpoints keep their fast-tier copy for quick restarts.
DEFAULT_KEEP_LOCAL_LATEST = 1

#: Default number of drain retries after a transient slow-tier failure — a
#: checkpoint only leaves DRAINING on success or once the retries are
#: exhausted, shared by :class:`CheckpointPolicy` and
#: :class:`repro.io.TieredStore`.
DEFAULT_DRAIN_RETRIES = 2

#: Default base delay (seconds) of the drain's exponential backoff: attempt
#: ``k`` (0-based) sleeps ``drain_backoff_s * 2**k`` before retrying.
DEFAULT_DRAIN_BACKOFF_S = 0.05


@dataclass(frozen=True)
class PlatformSpec:
    """Hardware description of one training platform.

    All bandwidths are bytes/second, capacities bytes, latencies seconds.
    """

    name: str
    gpus_per_node: int
    gpu_memory: int
    host_memory: int

    # --- device <-> host path (per GPU; Polaris maps one GPU per NUMA domain
    # so concurrent D2H copies from different GPUs do not contend, §6.1).
    d2h_pinned_bandwidth: float
    d2h_pageable_bandwidth: float
    d2d_bandwidth: float
    nvlink_bandwidth: float

    # --- host memory management costs.
    #: Cost of allocating + page-locking host memory, per byte.  Dominates the
    #: "Asynchronous checkpointing" baseline (CheckFreq/AsyncCheckpointIO)
    #: which allocates a fresh buffer per shard (§5.1, Figure 12c discussion).
    host_alloc_pin_seconds_per_byte: float
    #: Fixed overhead per host allocation call.
    host_alloc_latency: float

    # --- persistent storage.
    nvme_write_bandwidth: float
    #: Sustained write throughput of a single file stream to the PFS.
    pfs_per_stream_bandwidth: float
    #: Aggregate PFS bandwidth (Lustre: 160 OSTs, 650 GB/s on Polaris).
    pfs_aggregate_bandwidth: float
    #: Per-file metadata/open/close cost on the PFS.
    pfs_file_latency: float
    #: Effective per-stream write throughput of the synchronous
    #: ``torch.save``-style path (single-threaded serialization + pageable
    #: staging); calibrated from the paper's DeepSpeed baseline, which
    #: achieves ~1 GB/s per rank (Figures 7, 11a, 12a).
    sync_serialize_bandwidth: float

    # --- node-level network (used by consolidation / consensus messages).
    nic_bandwidth: float
    network_latency: float

    def __post_init__(self) -> None:
        positive_fields = [
            "gpus_per_node",
            "gpu_memory",
            "host_memory",
            "d2h_pinned_bandwidth",
            "d2h_pageable_bandwidth",
            "d2d_bandwidth",
            "nvlink_bandwidth",
            "nvme_write_bandwidth",
            "pfs_per_stream_bandwidth",
            "pfs_aggregate_bandwidth",
            "sync_serialize_bandwidth",
            "nic_bandwidth",
        ]
        for name in positive_fields:
            if getattr(self, name) <= 0:
                raise ConfigurationError(f"PlatformSpec.{name} must be positive")
        non_negative_fields = [
            "host_alloc_pin_seconds_per_byte",
            "host_alloc_latency",
            "pfs_file_latency",
            "network_latency",
        ]
        for name in non_negative_fields:
            if getattr(self, name) < 0:
                raise ConfigurationError(f"PlatformSpec.{name} must be >= 0")

    @staticmethod
    def polaris() -> "PlatformSpec":
        """ALCF Polaris node as described in §6.1 of the paper.

        * 4x A100-40GB per node, 512 GB DDR4 host memory.
        * pinned D2H 25 GB/s, D2D 85 GB/s, NVLink 600 GB/s.
        * two 1.6 TB node-local SSDs at 2 GB/s.
        * Lustre with 650 GB/s aggregate bandwidth.

        Per-stream PFS write throughput and the synchronous serialization
        throughput are not published directly; they are calibrated so the
        DeepSpeed-synchronous baseline reproduces the blocking times implied
        by Figures 7/8/11/12 (roughly 1 GB/s per rank blocking throughput for
        the sync engine and ~2.2 GB/s for a pinned streaming flush).
        """
        return PlatformSpec(
            name="polaris",
            gpus_per_node=4,
            gpu_memory=40 * GB,
            host_memory=512 * GB,
            d2h_pinned_bandwidth=gbps(25.0),
            d2h_pageable_bandwidth=gbps(6.0),
            d2d_bandwidth=gbps(85.0),
            nvlink_bandwidth=gbps(600.0),
            host_alloc_pin_seconds_per_byte=0.45 / gbps(1.0),
            host_alloc_latency=0.010,
            nvme_write_bandwidth=gbps(2.0),
            pfs_per_stream_bandwidth=gbps(2.2),
            pfs_aggregate_bandwidth=gbps(650.0),
            pfs_file_latency=0.015,
            sync_serialize_bandwidth=gbps(1.05),
            nic_bandwidth=gbps(25.0),
            network_latency=20e-6,
        )

    @staticmethod
    def laptop() -> "PlatformSpec":
        """A small single-node platform useful for quick experiments/tests."""
        return PlatformSpec(
            name="laptop",
            gpus_per_node=1,
            gpu_memory=8 * GB,
            host_memory=32 * GB,
            d2h_pinned_bandwidth=gbps(12.0),
            d2h_pageable_bandwidth=gbps(4.0),
            d2d_bandwidth=gbps(40.0),
            nvlink_bandwidth=gbps(40.0),
            host_alloc_pin_seconds_per_byte=0.5 / gbps(1.0),
            host_alloc_latency=0.005,
            nvme_write_bandwidth=gbps(1.5),
            pfs_per_stream_bandwidth=gbps(0.8),
            pfs_aggregate_bandwidth=gbps(3.0),
            pfs_file_latency=0.002,
            sync_serialize_bandwidth=gbps(0.5),
            nic_bandwidth=gbps(10.0),
            network_latency=50e-6,
        )

    def with_overrides(self, **kwargs: object) -> "PlatformSpec":
        """Return a copy of this spec with selected fields replaced."""
        return replace(self, **kwargs)  # type: ignore[arg-type]


@dataclass(frozen=True)
class CheckpointPolicy:
    """User-facing checkpoint engine configuration.

    Mirrors the single configuration attribute the paper exposes through the
    DeepSpeed config file (host buffer size, §5.2), plus the knobs needed to
    express the compared baselines.
    """

    #: Host memory reserved per process for buffering checkpoints.  The
    #: paper's evaluation grants every engine up to 64 GB per node
    #: (16 GB per rank with 4 ranks per node).
    host_buffer_size: int = 16 * GB
    #: Number of parallel host-to-storage flush threads (TorchSnapshot uses
    #: 4 in the paper's configuration; DataStates uses a single streaming
    #: flush thread per rank).
    flush_threads: int = 1
    #: Chunk size used when streaming tensors (TorchSnapshot-style chunking
    #: and DataStates streaming flushes).
    chunk_size: int = 64 * 1024 * 1024
    #: Multi-shard-per-rank layout: how many shard files one rank's state is
    #: spread across (greedy size-balanced binning).  ``1`` is the original
    #: single-shard layout, byte-identical to earlier releases.  Raising it
    #: lets the flush side drive several file streams (and several OSTs of a
    #: striped PFS) concurrently and unlocks per-shard capture/flush overlap.
    shards_per_rank: int = 1
    #: Number of concurrent device-to-host snapshot copy streams feeding the
    #: shard-set (DataStates engine).  ``1`` is the original single copy
    #: stream; more streams let capture keep up with a multi-shard flush.
    capture_streams: int = 1
    #: Whether D2H snapshots may lazily overlap the next iteration's forward
    #: and backward passes (the DataStates contribution).  Baselines set this
    #: to False.
    lazy_snapshot: bool = True
    #: Whether host-to-storage flushes may start before the whole checkpoint
    #: has been copied to the host (streamlined multi-level flushing).
    streamlined_flush: bool = True
    #: Whether the host staging buffer is pre-allocated and pinned once and
    #: reused (DataStates) or allocated per checkpoint/shard (CheckFreq-like).
    preallocated_pinned_buffer: bool = True
    #: Whether shard copies are coalesced into a single pre-allocated region
    #: rather than staged one-at-a-time.
    coalesce_shards: bool = True
    #: Run the distributed commit protocol asynchronously (overlapping with
    #: training) instead of synchronously at the end of the checkpoint.
    async_consolidation: bool = True
    #: Offset-addressed parallel shard writes: since the shard header fixes
    #: every tensor's file offset up front, staged tensors are pwritten to
    #: their final offsets by multiple workers, out of order, as each
    #: device-to-host copy lands.  ``False`` selects the legacy streaming
    #: path (one sequential writer per shard).
    parallel_shard_writes: bool = True
    #: Restore shards through a read-only mmap instead of reading the whole
    #: file into a heap ``bytes`` object: checksums are validated by
    #: streaming over the map and arrays are rebuilt straight out of it.
    #: Ignored on stores with nothing to map (object stores), which fall
    #: back to whole-object reads.
    mmap_restore: bool = True
    #: Restore-side prefetch: how many shard parts the loader's bounded
    #: fetch + CRC-validate stage keeps in flight ahead of deserialization,
    #: overlapping I/O with reassembly across the shard-set (and across
    #: ranks in ``load_all``).  ``0`` selects auto mode: the loader measures
    #: per-part fetch vs deserialize time and picks the depth from the
    #: overlap ratio; ``1`` is strictly serial fetch -> validate ->
    #: deserialize.
    prefetch_depth: int = DEFAULT_PREFETCH_DEPTH
    #: Tiered store: number of background workers draining committed
    #: checkpoints from the fast tier to the slow tier (only consulted when
    #: the engine's store is ``tiered``).
    drain_workers: int = DEFAULT_DRAIN_WORKERS
    #: Tiered store: eviction watermark — how many of the newest replicated
    #: checkpoints keep their fast-tier copy; older replicated copies are
    #: evicted so the fast tier never grows past the hot set.  ``0`` evicts
    #: every replicated checkpoint.
    keep_local_latest: int = DEFAULT_KEEP_LOCAL_LATEST
    #: Tiered store: bounded retries of a drain that hit a transient
    #: slow-tier failure (``0`` fails a drain on its first error).
    drain_retries: int = DEFAULT_DRAIN_RETRIES
    #: Tiered store: base delay of the drain's exponential backoff in
    #: seconds (attempt ``k`` sleeps ``drain_backoff_s * 2**k``).
    drain_backoff_s: float = DEFAULT_DRAIN_BACKOFF_S
    #: Tiered store: N-level chain spec
    #: (``"nvme:file:/a:50GiB,pfs:file:/b,object:object"``, see
    #: :func:`repro.io.parse_tier_chain_spec`).  ``None`` keeps the classic
    #: two-level fast/slow pair; only consulted when the engine's store is
    #: built from this policy (``repro.analysis.real_compare``, the CLI).
    tiers: "str | None" = None
    #: Incremental checkpoints (CAS store): before writing, compare each
    #: shard part's per-tensor CRC32s (and the folded whole-part checksum)
    #: against the previous committed manifest and record unchanged parts as
    #: chunk references instead of re-uploading them.  Only effective on a
    #: store exposing ``record_shard_reference`` (see
    #: :class:`repro.io.CASStore`); ignored elsewhere.  The dirty scan reads
    #: the live state once at request time, so lazy-capture engines pay one
    #: synchronous CRC pass per save in exchange for skipping clean parts.
    incremental: bool = False

    def __post_init__(self) -> None:
        if self.host_buffer_size <= 0:
            raise ConfigurationError("host_buffer_size must be positive")
        if self.flush_threads <= 0:
            raise ConfigurationError("flush_threads must be positive")
        if self.chunk_size <= 0:
            raise ConfigurationError("chunk_size must be positive")
        if self.shards_per_rank <= 0:
            raise ConfigurationError("shards_per_rank must be positive")
        if self.capture_streams <= 0:
            raise ConfigurationError("capture_streams must be positive")
        if self.prefetch_depth < 0:
            raise ConfigurationError("prefetch_depth must be >= 0")
        if self.drain_workers <= 0:
            raise ConfigurationError("drain_workers must be positive")
        if self.keep_local_latest < 0:
            raise ConfigurationError("keep_local_latest must be >= 0")
        if self.drain_retries < 0:
            raise ConfigurationError("drain_retries must be >= 0")
        if self.drain_backoff_s < 0:
            raise ConfigurationError("drain_backoff_s must be >= 0")

    def with_overrides(self, **kwargs: object) -> "CheckpointPolicy":
        """Return a copy of this policy with selected fields replaced."""
        return replace(self, **kwargs)  # type: ignore[arg-type]


@dataclass(frozen=True)
class RunConfig:
    """Top-level description of one simulated training-plus-checkpointing run."""

    iterations: int = 5
    checkpoint_interval: int = 1
    #: Host memory budget per rank for checkpoint staging.  §6.3 allows each
    #: approach "up to a maximum of 64 GB of host memory" per process; with
    #: four ranks per node and 512 GB of DDR4 that leaves ample room for the
    #: prefetched micro-batches, matching the Gemini observation cited in
    #: §3.4.
    host_buffer_per_rank: int = 64 * 10**9
    #: Seconds of warmup compute before the first iteration (ignored in
    #: throughput accounting, mirrors the paper discarding the first step).
    warmup_iterations: int = 0

    def __post_init__(self) -> None:
        if self.iterations <= 0:
            raise ConfigurationError("iterations must be positive")
        if self.checkpoint_interval <= 0:
            raise ConfigurationError("checkpoint_interval must be positive")
        if self.host_buffer_per_rank <= 0:
            raise ConfigurationError("host_buffer_per_rank must be positive")
        if self.warmup_iterations < 0:
            raise ConfigurationError("warmup_iterations must be >= 0")


DEFAULT_PLATFORM: PlatformSpec = PlatformSpec.polaris()
