"""Unit helpers shared across the library.

All sizes in the library are expressed in **bytes** (integers where
possible) and all durations in **seconds** (floats).  Bandwidths are
bytes/second.  These helpers exist so that calibration constants and
user-facing configuration can be written in the units the paper uses
(GB, GB/s, milliseconds) without ad-hoc conversion factors scattered
around the code base.
"""

from __future__ import annotations

KB: int = 1 << 10
MB: int = 1 << 20
GB: int = 1 << 30
TB: int = 1 << 40

#: The paper (and storage vendors) quote bandwidths in decimal GB/s.
GB_DECIMAL: int = 10**9


def kib(x: float) -> int:
    """Return ``x`` KiB expressed in bytes."""
    return int(x * KB)


def mib(x: float) -> int:
    """Return ``x`` MiB expressed in bytes."""
    return int(x * MB)


def gib(x: float) -> int:
    """Return ``x`` GiB expressed in bytes."""
    return int(x * GB)


def gb(x: float) -> int:
    """Return ``x`` decimal gigabytes expressed in bytes."""
    return int(x * GB_DECIMAL)


def gbps(x: float) -> float:
    """Return a bandwidth of ``x`` GB/s (decimal) in bytes/second."""
    return x * GB_DECIMAL


def to_gib(nbytes: float) -> float:
    """Convert bytes to GiB."""
    return nbytes / GB


def to_gb(nbytes: float) -> float:
    """Convert bytes to decimal GB (the unit used in the paper's figures)."""
    return nbytes / GB_DECIMAL


def to_gbps(bytes_per_second: float) -> float:
    """Convert bytes/second to decimal GB/s."""
    return bytes_per_second / GB_DECIMAL


def ms(x: float) -> float:
    """Return ``x`` milliseconds in seconds."""
    return x * 1e-3


def us(x: float) -> float:
    """Return ``x`` microseconds in seconds."""
    return x * 1e-6


_SIZE_SUFFIXES = {
    "": 1, "b": 1,
    "kb": 10**3, "mb": 10**6, "gb": 10**9, "tb": 10**12,
    "kib": 1 << 10, "mib": 1 << 20, "gib": 1 << 30, "tib": 1 << 40,
}


def parse_bytes(text: str) -> int:
    """Parse a human byte-size string (``"50GiB"``, ``"1.5GB"``, ``"4096"``).

    Binary suffixes (KiB/MiB/GiB/TiB) are powers of 1024, decimal ones
    (KB/MB/GB/TB) powers of 1000 — the convention storage vendors (and the
    paper) use.  A bare number is bytes.
    """
    raw = str(text).strip()
    for index, char in enumerate(raw):
        if char not in "0123456789.":
            number, suffix = raw[:index], raw[index:]
            break
    else:
        number, suffix = raw, ""
    suffix = suffix.strip().lower()
    try:
        scale = _SIZE_SUFFIXES[suffix]
        value = float(number)
    except (KeyError, ValueError):
        raise ValueError(f"unparseable byte size {text!r} "
                         f"(expected e.g. '50GiB', '1.5GB', '4096')") from None
    if value < 0:
        raise ValueError(f"byte size must be non-negative: {text!r}")
    return int(value * scale)


def human_bytes(nbytes: float) -> str:
    """Format a byte count for reports (e.g. ``'10.4 GiB'``)."""
    value = float(nbytes)
    for suffix in ("B", "KiB", "MiB", "GiB", "TiB"):
        if abs(value) < 1024.0 or suffix == "TiB":
            if suffix == "B":
                return f"{int(value)} B"
            return f"{value:.1f} {suffix}"
        value /= 1024.0
    raise AssertionError("unreachable")


def human_duration(seconds: float) -> str:
    """Format a duration for reports (e.g. ``'1.3 s'`` or ``'250 ms'``)."""
    if seconds < 0:
        return "-" + human_duration(-seconds)
    if seconds < 1e-3:
        return f"{seconds * 1e6:.0f} us"
    if seconds < 1.0:
        return f"{seconds * 1e3:.0f} ms"
    if seconds < 120.0:
        return f"{seconds:.2f} s"
    minutes, rem = divmod(seconds, 60.0)
    return f"{int(minutes)}m{rem:04.1f}s"
