"""Reference values digitised from the paper's figures.

These are the numbers published in the HPDC'24 paper (read off Figures 3, 4,
7-12).  They are **not** used by the simulator in any way — they exist so the
benchmark harness and EXPERIMENTS.md can put "paper" and "measured" columns
side by side and check that the *shape* of every result (ordering of the
engines, approximate speedup factors, where trends bend) is reproduced.

Engine key order everywhere: ``deepspeed``, ``async``, ``torchsnapshot``,
``datastates``.
"""

from __future__ import annotations

from typing import Dict, List

ENGINES: List[str] = ["deepspeed", "async", "torchsnapshot", "datastates"]

#: Figure 3 — aggregate checkpoint size (GB) and GPUs used, per model size.
FIGURE3_CHECKPOINT_SIZES_GB: Dict[str, float] = {
    "3B": 45.0,
    "7B": 83.0,
    "13B": 166.0,
    "30B": 444.0,
    "70B": 1065.0,
}
FIGURE3_NUM_GPUS: Dict[str, int] = {"3B": 4, "7B": 8, "13B": 16, "30B": 32, "70B": 80}

#: Figure 4 — iteration phase durations in seconds (forward, backward, update).
FIGURE4_PHASES_S: Dict[str, Dict[str, float]] = {
    "3B": {"forward": 0.81, "backward": 0.79, "update": 0.10},
    "7B": {"forward": 1.26, "backward": 1.82, "update": 0.12},
    "13B": {"forward": 1.85, "backward": 3.56, "update": 0.09},
    "30B": {"forward": 3.72, "backward": 8.58, "update": 0.11},
    "70B": {"forward": 6.71, "backward": 16.82, "update": 0.07},
}

#: Figure 7 — aggregate checkpointing throughput (GB/s) vs model size, DP=1,
#: checkpoint every iteration, 5 iterations.
FIGURE7_THROUGHPUT_GBPS: Dict[str, Dict[str, float]] = {
    "3B": {"deepspeed": 4, "async": 7, "torchsnapshot": 9, "datastates": 135},
    "7B": {"deepspeed": 8, "async": 11, "torchsnapshot": 20, "datastates": 223},
    "13B": {"deepspeed": 7, "async": 23, "torchsnapshot": 41, "datastates": 234},
    "30B": {"deepspeed": 15, "async": 44, "torchsnapshot": 47, "datastates": 395},
    "70B": {"deepspeed": 54, "async": 78, "torchsnapshot": 117, "datastates": 638},
}

#: Figure 8 — average iteration time (s) while checkpointing, vs model size.
FIGURE8_ITERATION_TIME_S: Dict[str, Dict[str, float]] = {
    "3B": {"deepspeed": 9, "async": 9, "torchsnapshot": 7, "datastates": 4},
    "7B": {"deepspeed": 13, "async": 15, "torchsnapshot": 7, "datastates": 5},
    "13B": {"deepspeed": 29, "async": 17, "torchsnapshot": 10, "datastates": 6},
    "30B": {"deepspeed": 42, "async": 24, "torchsnapshot": 22, "datastates": 14},
    "70B": {"deepspeed": 47, "async": 39, "torchsnapshot": 36, "datastates": 29},
}

#: Figure 9 — 13B model, aggregate checkpoint throughput (GB/s) vs DP degree.
FIGURE9_DP_THROUGHPUT_13B_GBPS: Dict[int, Dict[str, float]] = {
    1: {"deepspeed": 16, "async": 15, "torchsnapshot": 41, "datastates": 65},
    2: {"deepspeed": 26, "async": 43, "torchsnapshot": 83, "datastates": 247},
    4: {"deepspeed": 48, "async": 73, "torchsnapshot": 118, "datastates": 397},
    8: {"deepspeed": 71, "async": 112, "torchsnapshot": 110, "datastates": 496},
    16: {"deepspeed": 86, "async": 176, "torchsnapshot": 124, "datastates": 525},
}

#: Figure 10 — 30B model, aggregate checkpoint throughput (GB/s) vs DP degree.
FIGURE10_DP_THROUGHPUT_30B_GBPS: Dict[int, Dict[str, float]] = {
    1: {"deepspeed": 15, "async": 75, "torchsnapshot": 47, "datastates": 395},
    2: {"deepspeed": 20, "async": 71, "torchsnapshot": 137, "datastates": 549},
    4: {"deepspeed": 23, "async": 108, "torchsnapshot": 231, "datastates": 813},
    8: {"deepspeed": 25, "async": 186, "torchsnapshot": 226, "datastates": 834},
    16: {"deepspeed": 25, "async": 295, "torchsnapshot": 256, "datastates": 1201},
}

#: Figure 11 — 7B model, 50 iterations, varying checkpoint interval.
#: Keys are the checkpoint interval in iterations ("checkpoint freq." axis).
FIGURE11_7B: Dict[str, Dict[int, Dict[str, float]]] = {
    "throughput_gbps": {
        10: {"deepspeed": 9, "async": 11, "torchsnapshot": 15, "datastates": 243},
        5: {"deepspeed": 9, "async": 11, "torchsnapshot": 15, "datastates": 212},
        4: {"deepspeed": 8, "async": 11, "torchsnapshot": 14, "datastates": 239},
        3: {"deepspeed": 8, "async": 10, "torchsnapshot": 14, "datastates": 172},
        2: {"deepspeed": 8, "async": 11, "torchsnapshot": 25, "datastates": 74},
        1: {"deepspeed": 9, "async": 10, "torchsnapshot": 13, "datastates": 76},
    },
    "iteration_time_s": {
        10: {"deepspeed": 13, "async": 11, "torchsnapshot": 9, "datastates": 3},
        5: {"deepspeed": 13, "async": 12, "torchsnapshot": 9, "datastates": 4},
        4: {"deepspeed": 13, "async": 13, "torchsnapshot": 9, "datastates": 4},
        3: {"deepspeed": 13, "async": 14, "torchsnapshot": 9, "datastates": 4},
        2: {"deepspeed": 13, "async": 14, "torchsnapshot": 7, "datastates": 4},
        1: {"deepspeed": 13, "async": 19, "torchsnapshot": 10, "datastates": 4},
    },
    "end_to_end_s": {
        10: {"deepspeed": 204, "async": 234, "torchsnapshot": 178, "datastates": 167},
        5: {"deepspeed": 252, "async": 337, "torchsnapshot": 202, "datastates": 176},
        4: {"deepspeed": 274, "async": 360, "torchsnapshot": 218, "datastates": 175},
        3: {"deepspeed": 312, "async": 419, "torchsnapshot": 242, "datastates": 190},
        2: {"deepspeed": 406, "async": 564, "torchsnapshot": 244, "datastates": 184},
        1: {"deepspeed": 631, "async": 1034, "torchsnapshot": 465, "datastates": 282},
    },
}

#: Figure 12 — 13B model, 50 iterations, varying checkpoint interval.
FIGURE12_13B: Dict[str, Dict[int, Dict[str, float]]] = {
    "throughput_gbps": {
        10: {"deepspeed": 17, "async": 19, "torchsnapshot": 40, "datastates": 155},
        5: {"deepspeed": 17, "async": 18, "torchsnapshot": 32, "datastates": 154},
        4: {"deepspeed": 17, "async": 20, "torchsnapshot": 42, "datastates": 147},
        3: {"deepspeed": 17, "async": 20, "torchsnapshot": 35, "datastates": 146},
        2: {"deepspeed": 17, "async": 18, "torchsnapshot": 34, "datastates": 143},
        1: {"deepspeed": 17, "async": 19, "torchsnapshot": 34, "datastates": 142},
    },
    "iteration_time_s": {
        10: {"deepspeed": 15, "async": 15, "torchsnapshot": 10, "datastates": 7},
        5: {"deepspeed": 15, "async": 16, "torchsnapshot": 11, "datastates": 7},
        4: {"deepspeed": 15, "async": 17, "torchsnapshot": 9, "datastates": 7},
        3: {"deepspeed": 15, "async": 17, "torchsnapshot": 10, "datastates": 7},
        2: {"deepspeed": 15, "async": 19, "torchsnapshot": 10, "datastates": 7},
        1: {"deepspeed": 15, "async": 25, "torchsnapshot": 10, "datastates": 7},
    },
    "end_to_end_s": {
        10: {"deepspeed": 322, "async": 369, "torchsnapshot": 301, "datastates": 285},
        5: {"deepspeed": 371, "async": 487, "torchsnapshot": 329, "datastates": 291},
        4: {"deepspeed": 391, "async": 521, "torchsnapshot": 322, "datastates": 291},
        3: {"deepspeed": 429, "async": 610, "torchsnapshot": 349, "datastates": 297},
        2: {"deepspeed": 518, "async": 799, "torchsnapshot": 401, "datastates": 314},
        1: {"deepspeed": 759, "async": 1364, "torchsnapshot": 517, "datastates": 351},
    },
}

#: Headline claims from the abstract / §6.4 / conclusions.
HEADLINE_CLAIMS = {
    "min_checkpoint_speedup_vs_baselines": 3.0,
    "max_checkpoint_speedup_vs_baselines": 48.0,
    "min_end_to_end_speedup": 1.3,
    "max_end_to_end_speedup": 2.2,
}
