"""Analysis layer: metrics, paper reference data, figure generators, text reports."""

from . import paper_data
from .figures import (
    DEFAULT_ENGINES,
    dp_sweep_rows,
    figure3_checkpoint_sizes,
    figure4_iteration_phases,
    figure7_8_model_size_sweep,
    figure7_rows,
    figure8_rows,
    figure9_10_dp_sweep,
    figure11_12_frequency_sweep,
    frequency_sweep_rows,
    headline_speedups,
    table1_model_zoo,
)
from .metrics import (
    end_to_end_speedups,
    geometric_mean,
    iteration_time_speedups,
    ordering_matches,
    relative_error,
    throughput_speedups,
)
from .real_compare import compare_real_engines, comparison_table_rows, run_real_engine
from .replay import calibrate_engine, replay_config, replay_table_rows, replay_trace
from .report import format_comparison, format_table, print_rows

__all__ = [
    "paper_data",
    "DEFAULT_ENGINES",
    "table1_model_zoo",
    "figure3_checkpoint_sizes",
    "figure4_iteration_phases",
    "figure7_8_model_size_sweep",
    "figure7_rows",
    "figure8_rows",
    "figure9_10_dp_sweep",
    "dp_sweep_rows",
    "figure11_12_frequency_sweep",
    "frequency_sweep_rows",
    "headline_speedups",
    "throughput_speedups",
    "iteration_time_speedups",
    "end_to_end_speedups",
    "ordering_matches",
    "geometric_mean",
    "relative_error",
    "format_table",
    "format_comparison",
    "print_rows",
    "run_real_engine",
    "compare_real_engines",
    "comparison_table_rows",
    "calibrate_engine",
    "replay_config",
    "replay_table_rows",
    "replay_trace",
]
