"""Metric helpers shared by the figure generators and benchmarks."""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterable, Mapping

from ..training.runtime import RunResult


@dataclass(frozen=True)
class EngineComparison:
    """DataStates vs one baseline on one metric."""

    baseline: str
    metric: str
    baseline_value: float
    datastates_value: float

    @property
    def speedup(self) -> float:
        """How many times better DataStates is (>1 means better).

        For throughput-like metrics higher is better; for time-like metrics
        lower is better — the caller chooses which ratio to build.
        """
        if self.baseline_value <= 0 or self.datastates_value <= 0:
            return float("nan")
        return self.baseline_value / self.datastates_value


def throughput_speedups(results: Mapping[str, RunResult]) -> Dict[str, float]:
    """DataStates checkpoint-throughput speedup over each baseline."""
    datastates = results["datastates"].checkpoint_throughput_bytes_per_second
    speedups = {}
    for name, result in results.items():
        if name == "datastates":
            continue
        baseline = result.checkpoint_throughput_bytes_per_second
        speedups[name] = datastates / baseline if baseline > 0 else float("inf")
    return speedups


def iteration_time_speedups(results: Mapping[str, RunResult]) -> Dict[str, float]:
    """DataStates iteration-time speedup (baseline_time / datastates_time)."""
    datastates = results["datastates"].avg_iteration_seconds_with_checkpoint
    speedups = {}
    for name, result in results.items():
        if name == "datastates":
            continue
        speedups[name] = (
            result.avg_iteration_seconds_with_checkpoint / datastates
            if datastates > 0 else float("inf")
        )
    return speedups


def end_to_end_speedups(results: Mapping[str, RunResult]) -> Dict[str, float]:
    """DataStates end-to-end runtime speedup over each baseline."""
    datastates = results["datastates"].end_to_end_seconds
    speedups = {}
    for name, result in results.items():
        if name == "datastates":
            continue
        speedups[name] = result.end_to_end_seconds / datastates if datastates > 0 else float("inf")
    return speedups


def ordering_matches(measured: Mapping[str, float], reference: Mapping[str, float],
                     higher_is_better: bool = True) -> bool:
    """Do measured values rank the engines in the same order as the paper?

    Only the position of ``datastates`` relative to every baseline is
    checked — that is the paper's qualitative claim — rather than the full
    permutation, which is sensitive to noise between closely-matched
    baselines.
    """
    if "datastates" not in measured or "datastates" not in reference:
        return False
    for name in measured:
        if name == "datastates" or name not in reference:
            continue
        measured_better = (
            measured["datastates"] > measured[name]
            if higher_is_better else measured["datastates"] < measured[name]
        )
        reference_better = (
            reference["datastates"] > reference[name]
            if higher_is_better else reference["datastates"] < reference[name]
        )
        if measured_better != reference_better:
            return False
    return True


def geometric_mean(values: Iterable[float]) -> float:
    """Geometric mean (ignores non-positive entries)."""
    cleaned = [v for v in values if v > 0]
    if not cleaned:
        return float("nan")
    product = 1.0
    for value in cleaned:
        product *= value
    return product ** (1.0 / len(cleaned))


def relative_error(measured: float, reference: float) -> float:
    """|measured - reference| / reference (inf when the reference is zero)."""
    if reference == 0:
        return float("inf")
    return abs(measured - reference) / abs(reference)
