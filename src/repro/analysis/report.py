"""Plain-text report formatting for benchmark and example output."""

from __future__ import annotations

from typing import List, Mapping, Optional, Sequence


def format_table(rows: Sequence[Mapping[str, object]], columns: Optional[Sequence[str]] = None,
                 title: Optional[str] = None) -> str:
    """Render a list of dict rows as a fixed-width text table."""
    if not rows:
        return f"{title}\n(no rows)" if title else "(no rows)"
    if columns is None:
        columns = list(rows[0].keys())

    def fmt(value: object) -> str:
        if value is None:
            return "-"
        if isinstance(value, float):
            return f"{value:.2f}"
        return str(value)

    widths = {col: len(str(col)) for col in columns}
    rendered: List[List[str]] = []
    for row in rows:
        line = [fmt(row.get(col)) for col in columns]
        rendered.append(line)
        for col, cell in zip(columns, line):
            widths[col] = max(widths[col], len(cell))

    lines = []
    if title:
        lines.append(title)
    header = "  ".join(str(col).ljust(widths[col]) for col in columns)
    lines.append(header)
    lines.append("  ".join("-" * widths[col] for col in columns))
    for line in rendered:
        lines.append("  ".join(cell.ljust(widths[col]) for col, cell in zip(columns, line)))
    return "\n".join(lines)


def format_comparison(measured: Mapping[str, float], reference: Mapping[str, float],
                      label: str = "metric") -> str:
    """Two-column measured-vs-paper comparison for one engine set."""
    rows = []
    for key in measured:
        rows.append(
            {
                "engine": key,
                f"measured_{label}": measured[key],
                f"paper_{label}": reference.get(key),
            }
        )
    return format_table(rows)


def print_rows(rows: Sequence[Mapping[str, object]], columns: Optional[Sequence[str]] = None,
               title: Optional[str] = None) -> None:
    """Print a table (convenience for benchmarks/examples)."""
    print(format_table(rows, columns=columns, title=title))
