"""Generators for every table and figure of the paper's evaluation.

Each ``figureN_*`` function runs the necessary simulations and returns the
same rows/series the corresponding figure plots, in plain dict form so the
benchmark harness can print them and EXPERIMENTS.md can tabulate
paper-vs-measured.  Scale knobs (model subsets, iteration counts) exist so
tests can exercise the code paths quickly; the defaults match the paper's
experimental setup.
"""

from __future__ import annotations

from typing import Dict, List, Mapping, Optional, Sequence

from ..checkpoint import ENGINE_NAMES
from ..model import MODEL_SIZES, phase_breakdown_table, runtime_config
from ..parallelism import checkpoint_size_summary
from ..training.runtime import RunResult, simulate_run
from . import paper_data

#: Default engine set, in the paper's legend order.
DEFAULT_ENGINES: List[str] = list(ENGINE_NAMES)


# ---------------------------------------------------------------------------
# Table 1 / Figures 3 and 4 (model accounting, no simulation needed)
# ---------------------------------------------------------------------------

def table1_model_zoo() -> List[Dict[str, object]]:
    """Table 1: model architectures and runtime layouts."""
    rows = []
    for size in MODEL_SIZES:
        runtime = runtime_config(size)
        model = runtime.model
        rows.append(
            {
                "model": size,
                "layers": model.num_layers,
                "hidden_dim": model.hidden_size,
                "attention_heads": model.num_attention_heads,
                "num_nodes": runtime.num_nodes,
                "tensor_parallel": runtime.tensor_parallel,
                "pipeline_parallel": runtime.pipeline_parallel,
                "parameters_billion": model.total_parameters() / 1e9,
            }
        )
    return rows


def figure3_checkpoint_sizes(sizes: Optional[Sequence[str]] = None) -> List[Dict[str, object]]:
    """Figure 3: aggregate and per-GPU checkpoint sizes per model."""
    rows = []
    for size in (sizes or MODEL_SIZES):
        summary = checkpoint_size_summary(runtime_config(size))
        summary["paper_aggregate_gb"] = paper_data.FIGURE3_CHECKPOINT_SIZES_GB.get(size)
        summary["paper_num_gpus"] = paper_data.FIGURE3_NUM_GPUS.get(size)
        rows.append(summary)
    return rows


def figure4_iteration_phases() -> Dict[str, Dict[str, float]]:
    """Figure 4: forward/backward/update breakdown per model size."""
    return phase_breakdown_table()


# ---------------------------------------------------------------------------
# Figures 7 and 8 (model-size sweep, DP=1, checkpoint every iteration)
# ---------------------------------------------------------------------------

def figure7_8_model_size_sweep(
    sizes: Optional[Sequence[str]] = None,
    engines: Optional[Sequence[str]] = None,
    iterations: int = 5,
) -> Dict[str, Dict[str, RunResult]]:
    """Run the Figure 7/8 experiment; returns results[model][engine]."""
    results: Dict[str, Dict[str, RunResult]] = {}
    for size in (sizes or MODEL_SIZES):
        results[size] = {}
        for engine in (engines or DEFAULT_ENGINES):
            results[size][engine] = simulate_run(
                size, engine, data_parallel=1, iterations=iterations, checkpoint_interval=1
            )
    return results


def figure7_rows(results: Mapping[str, Mapping[str, RunResult]]) -> List[Dict[str, object]]:
    """Figure 7 rows: checkpoint throughput (GB/s) per model and engine."""
    rows = []
    for size, by_engine in results.items():
        row: Dict[str, object] = {"model": size}
        for engine, result in by_engine.items():
            row[engine] = round(result.checkpoint_throughput_gb_per_second, 1)
            paper = paper_data.FIGURE7_THROUGHPUT_GBPS.get(size, {}).get(engine)
            row[f"paper_{engine}"] = paper
        rows.append(row)
    return rows


def figure8_rows(results: Mapping[str, Mapping[str, RunResult]]) -> List[Dict[str, object]]:
    """Figure 8 rows: average iteration time (s) while checkpointing."""
    rows = []
    for size, by_engine in results.items():
        row: Dict[str, object] = {"model": size}
        for engine, result in by_engine.items():
            row[engine] = round(result.avg_iteration_seconds_with_checkpoint, 2)
            row[f"paper_{engine}"] = paper_data.FIGURE8_ITERATION_TIME_S.get(size, {}).get(engine)
        rows.append(row)
    return rows


# ---------------------------------------------------------------------------
# Figures 9 and 10 (data-parallel scaling)
# ---------------------------------------------------------------------------

def figure9_10_dp_sweep(
    model_size: str,
    dp_degrees: Sequence[int] = (1, 2, 4, 8, 16),
    engines: Optional[Sequence[str]] = None,
    iterations: int = 5,
) -> Dict[int, Dict[str, RunResult]]:
    """Run the Figure 9 (13B) / Figure 10 (30B) experiment."""
    results: Dict[int, Dict[str, RunResult]] = {}
    for dp in dp_degrees:
        results[dp] = {}
        for engine in (engines or DEFAULT_ENGINES):
            results[dp][engine] = simulate_run(
                model_size, engine, data_parallel=dp, iterations=iterations, checkpoint_interval=1
            )
    return results


def dp_sweep_rows(model_size: str,
                  results: Mapping[int, Mapping[str, RunResult]]) -> List[Dict[str, object]]:
    """Rows for Figures 9/10: throughput and per-GPU checkpoint size per DP degree."""
    reference = (
        paper_data.FIGURE9_DP_THROUGHPUT_13B_GBPS
        if model_size == "13B" else paper_data.FIGURE10_DP_THROUGHPUT_30B_GBPS
    )
    rows = []
    for dp, by_engine in results.items():
        row: Dict[str, object] = {"model": model_size, "data_parallel": dp}
        for engine, result in by_engine.items():
            row[engine] = round(result.checkpoint_throughput_gb_per_second, 1)
            row[f"paper_{engine}"] = reference.get(dp, {}).get(engine)
        any_result = next(iter(by_engine.values()))
        row["ckpt_per_gpu_gb"] = round(any_result.checkpoint_bytes_per_rank / 1e9, 2)
        row["num_gpus"] = any_result.world_size
        rows.append(row)
    return rows


# ---------------------------------------------------------------------------
# Figures 11 and 12 (checkpoint frequency sweep)
# ---------------------------------------------------------------------------

def figure11_12_frequency_sweep(
    model_size: str,
    intervals: Sequence[int] = (10, 5, 4, 3, 2, 1),
    engines: Optional[Sequence[str]] = None,
    iterations: int = 50,
) -> Dict[int, Dict[str, RunResult]]:
    """Run the Figure 11 (7B) / Figure 12 (13B) experiment."""
    results: Dict[int, Dict[str, RunResult]] = {}
    for interval in intervals:
        results[interval] = {}
        for engine in (engines or DEFAULT_ENGINES):
            results[interval][engine] = simulate_run(
                model_size, engine, data_parallel=1,
                iterations=iterations, checkpoint_interval=interval,
            )
    return results


def frequency_sweep_rows(model_size: str,
                         results: Mapping[int, Mapping[str, RunResult]]) -> List[Dict[str, object]]:
    """Rows for Figures 11/12 (a: throughput, b: iteration time, c: end-to-end)."""
    reference = paper_data.FIGURE11_7B if model_size == "7B" else paper_data.FIGURE12_13B
    rows = []
    for interval, by_engine in results.items():
        row: Dict[str, object] = {"model": model_size, "checkpoint_interval": interval}
        for engine, result in by_engine.items():
            row[f"throughput_{engine}"] = round(result.checkpoint_throughput_gb_per_second, 1)
            row[f"iter_time_{engine}"] = round(result.avg_iteration_seconds_with_checkpoint, 2)
            row[f"end_to_end_{engine}"] = round(result.end_to_end_seconds, 1)
            row[f"paper_throughput_{engine}"] = reference["throughput_gbps"].get(interval, {}).get(engine)
            row[f"paper_iter_time_{engine}"] = reference["iteration_time_s"].get(interval, {}).get(engine)
            row[f"paper_end_to_end_{engine}"] = reference["end_to_end_s"].get(interval, {}).get(engine)
        rows.append(row)
    return rows


# ---------------------------------------------------------------------------
# Headline claims (§6.4 / abstract)
# ---------------------------------------------------------------------------

def headline_speedups(results: Mapping[str, Mapping[str, RunResult]]) -> Dict[str, float]:
    """Min/max DataStates speedups across a model-size sweep's results."""
    throughput_ratios: List[float] = []
    end_to_end_ratios: List[float] = []
    for by_engine in results.values():
        if "datastates" not in by_engine:
            continue
        ds = by_engine["datastates"]
        for name, result in by_engine.items():
            if name == "datastates":
                continue
            if result.checkpoint_throughput_bytes_per_second > 0:
                throughput_ratios.append(
                    ds.checkpoint_throughput_bytes_per_second
                    / result.checkpoint_throughput_bytes_per_second
                )
            if ds.end_to_end_seconds > 0:
                end_to_end_ratios.append(result.end_to_end_seconds / ds.end_to_end_seconds)
    return {
        "min_checkpoint_speedup": min(throughput_ratios) if throughput_ratios else float("nan"),
        "max_checkpoint_speedup": max(throughput_ratios) if throughput_ratios else float("nan"),
        "min_end_to_end_speedup": min(end_to_end_ratios) if end_to_end_ratios else float("nan"),
        "max_end_to_end_speedup": max(end_to_end_ratios) if end_to_end_ratios else float("nan"),
    }
