"""Run the real-mode trainer under each registered engine and compare stalls.

The real-mode counterpart of the Figure 7/8 comparison: the same tiny NumPy
transformer is trained under every engine name, and the training-visible
checkpoint stall (consistency gate + save-request time) is reported per
engine.  Shared by ``repro compare-real``, the
``examples/real_engine_comparison.py`` walkthrough, and the
``BENCH_real_engines.json`` benchmark sweep.
"""

from __future__ import annotations

import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from ..config import CheckpointPolicy
from ..core import ENGINE_LABELS, ENGINE_NAMES, canonical_engine_name, create_real_engine
from ..io import create_store
from ..model import NumpyTransformerLM, tiny_config
from ..training import RealTrainer


def run_real_engine(
    engine_name: str,
    workdir: Union[str, Path],
    iterations: int = 4,
    checkpoint_interval: int = 1,
    hidden_size: int = 128,
    num_layers: int = 2,
    seed: int = 0,
    policy: Optional[CheckpointPolicy] = None,
    store_backend: str = "file",
) -> Dict[str, object]:
    """Train under one engine and measure its per-iteration blocked time.

    ``store_backend`` selects the shard store by registry name (``file`` or
    ``object``); the engine pipeline is identical either way.
    """
    name = canonical_engine_name(engine_name)
    store = create_store(store_backend, root=Path(workdir) / name)
    engine = create_real_engine(name, store, policy=policy)
    with engine:
        model = NumpyTransformerLM(
            tiny_config(hidden_size=hidden_size, num_layers=num_layers), seed=seed
        )
        trainer = RealTrainer(model, engine=engine)
        report = trainer.train(iterations=iterations,
                               checkpoint_interval=checkpoint_interval)
        engine.wait_all()
        committed = engine.list_checkpoints()
        # Restore round trip through the engine protocol (validated, and
        # prefetched per policy.prefetch_depth) — makes the restore-side
        # knobs observable in the comparison, not just the save side.
        restore_seconds = None
        if committed:
            start = time.perf_counter()
            engine.load(committed[-1])
            restore_seconds = time.perf_counter() - start
    root = getattr(store, "root", None)
    return {
        "engine": name,
        "label": ENGINE_LABELS.get(name, name),
        "checkpoint_dir": str(root) if root is not None
        else f"object://{getattr(store, 'bucket', store_backend)}",
        "iterations": len(report.steps),
        "checkpoints": len(report.checkpoints),
        "committed": len(committed),
        "compute_seconds": report.total_compute_seconds,
        "blocked_seconds": report.total_checkpoint_block_seconds,
        # Median per iteration is the headline comparison number: it is
        # robust against scheduler-contention spikes on small hosts, where a
        # single stolen quantum would otherwise dominate the mean.
        "blocked_ms_per_iteration": report.median_blocked_seconds_per_iteration * 1e3,
        "blocked_ms_per_iteration_mean": report.blocked_seconds_per_iteration * 1e3,
        "restore_seconds": restore_seconds,
    }


def compare_real_engines(
    workdir: Union[str, Path],
    engines: Optional[Sequence[str]] = None,
    iterations: int = 4,
    checkpoint_interval: int = 1,
    hidden_size: int = 128,
    num_layers: int = 2,
    seed: int = 0,
    policy: Optional[CheckpointPolicy] = None,
    store_backend: str = "file",
) -> List[Dict[str, object]]:
    """Per-engine blocked-time rows for every (or the given) engine name."""
    rows = []
    for engine_name in engines or ENGINE_NAMES:
        rows.append(run_real_engine(
            engine_name, workdir,
            iterations=iterations, checkpoint_interval=checkpoint_interval,
            hidden_size=hidden_size, num_layers=num_layers, seed=seed,
            policy=policy, store_backend=store_backend,
        ))
    return rows


def comparison_table_rows(rows: Sequence[Dict[str, object]]) -> List[Dict[str, object]]:
    """Rounded, display-friendly version of :func:`compare_real_engines` rows."""
    return [
        {
            "engine": row["engine"],
            "label": row["label"],
            "ckpts": row["checkpoints"],
            "blocked_ms_per_iter": round(float(row["blocked_ms_per_iteration"]), 3),
            "blocked_ms_mean": round(float(row["blocked_ms_per_iteration_mean"]), 3),
            "blocked_total_s": round(float(row["blocked_seconds"]), 4),
            "compute_s": round(float(row["compute_seconds"]), 4),
            "restore_ms": (round(float(row["restore_seconds"]) * 1e3, 3)
                           if row.get("restore_seconds") is not None else None),
        }
        for row in rows
    ]
