"""Run the real-mode trainer under each registered engine and compare stalls.

The real-mode counterpart of the Figure 7/8 comparison: the same tiny NumPy
transformer is trained under every engine name, and the training-visible
checkpoint stall (consistency gate + save-request time) is reported per
engine.  Shared by ``repro compare-real``, the
``examples/real_engine_comparison.py`` walkthrough, and the
``BENCH_real_engines.json`` benchmark sweep.
"""

from __future__ import annotations

import time
from pathlib import Path
from typing import Dict, List, Optional, Sequence, Union

from ..config import CheckpointPolicy
from ..core import ENGINE_LABELS, ENGINE_NAMES, canonical_engine_name, create_real_engine
from ..io import canonical_store_name, create_store
from ..model import NumpyTransformerLM, tiny_config
from ..restart import RestoreSpec
from ..training import RealTrainer


def _store_location(store, store_backend: str) -> str:
    """Display-friendly location of a store (directory, bucket, tier pair,
    or namespaced chunk pool)."""
    job_id = getattr(store, "job_id", None)
    if job_id is not None and getattr(store, "inner", None) is not None:
        return f"cas://{job_id}@{_store_location(store.inner, 'pool')}"
    levels = getattr(store, "levels", None)
    if levels is not None and getattr(store, "fast", None) is not None:
        return "tiered://" + " -> ".join(
            _store_location(level.store, name)
            for level, name in zip(levels, store.level_names))
    root = getattr(store, "root", None)
    if root is not None:
        return str(root)
    return f"object://{getattr(store, 'bucket', store_backend)}"


def run_real_engine(
    engine_name: str,
    workdir: Union[str, Path],
    iterations: int = 4,
    checkpoint_interval: int = 1,
    hidden_size: int = 128,
    num_layers: int = 2,
    seed: int = 0,
    policy: Optional[CheckpointPolicy] = None,
    store_backend: str = "file",
    store_kwargs: Optional[Dict[str, object]] = None,
) -> Dict[str, object]:
    """Train under one engine and measure its per-iteration blocked time.

    ``store_backend`` selects the shard store by registry name (``file``,
    ``object``, ``tiered``, ``cas``, ...); the engine pipeline is identical
    either way.  ``store_kwargs`` are forwarded to
    :func:`repro.io.create_store` (the tiered backend's composition knobs,
    the CAS backend's namespace/chunk-pool knobs).  On a draining store the
    row additionally reports the drain pipeline's counters, measured after
    waiting the background replication out; on a deduplicating store it
    reports the chunk pool's bytes-written / dedup-ratio counters.
    """
    name = canonical_engine_name(engine_name)
    kwargs = dict(store_kwargs or {})
    if policy is not None and canonical_store_name(store_backend) == "tiered":
        # The policy's tiered knobs reach the store here (explicit
        # store_kwargs still win) — a policy with drain_workers=8 must not
        # silently run a 2-worker drain.
        kwargs.setdefault("drain_workers", policy.drain_workers)
        kwargs.setdefault("keep_local_latest", policy.keep_local_latest)
        kwargs.setdefault("drain_retries", policy.drain_retries)
        kwargs.setdefault("drain_backoff_s", policy.drain_backoff_s)
        if policy.tiers is not None:
            kwargs.setdefault("tiers", policy.tiers)
    store = create_store(store_backend, root=Path(workdir) / name, **kwargs)
    engine = create_real_engine(name, store, policy=policy)
    with engine:
        model = NumpyTransformerLM(
            tiny_config(hidden_size=hidden_size, num_layers=num_layers), seed=seed
        )
        trainer = RealTrainer(model, engine=engine)
        report = trainer.train(iterations=iterations,
                               checkpoint_interval=checkpoint_interval)
        engine.wait_all()
        committed = engine.list_checkpoints()
        # Restore round trip through the engine protocol (validated, and
        # prefetched per policy.prefetch_depth) — makes the restore-side
        # knobs observable in the comparison, not just the save side.
        restore_seconds = None
        if committed:
            start = time.perf_counter()
            engine.load(RestoreSpec(tag=committed[-1]))
            restore_seconds = time.perf_counter() - start
    # Tiered stores: wait out the background drain so the row reports a
    # settled pipeline (how much the slow tier lagged the training loop).
    drain_metrics = None
    if callable(getattr(store, "wait_drained", None)):
        start = time.perf_counter()
        store.wait_drained()
        drain_metrics = dict(store.drain_metrics())
        drain_metrics["drain_wait_seconds"] = time.perf_counter() - start
    # CAS stores: the chunk pool's dedup economics (bytes actually written
    # vs logical checkpoint bytes) are the headline of the incremental path.
    dedup_metrics = None
    if callable(getattr(store, "dedup_metrics", None)):
        dedup_metrics = dict(store.dedup_metrics())
    return {
        "engine": name,
        "label": ENGINE_LABELS.get(name, name),
        "checkpoint_dir": _store_location(store, store_backend),
        "iterations": len(report.steps),
        "checkpoints": len(report.checkpoints),
        "committed": len(committed),
        "compute_seconds": report.total_compute_seconds,
        "blocked_seconds": report.total_checkpoint_block_seconds,
        # Median per iteration is the headline comparison number: it is
        # robust against scheduler-contention spikes on small hosts, where a
        # single stolen quantum would otherwise dominate the mean.
        "blocked_ms_per_iteration": report.median_blocked_seconds_per_iteration * 1e3,
        "blocked_ms_per_iteration_mean": report.blocked_seconds_per_iteration * 1e3,
        "restore_seconds": restore_seconds,
        "drain": drain_metrics,
        "dedup": dedup_metrics,
    }


def compare_real_engines(
    workdir: Union[str, Path],
    engines: Optional[Sequence[str]] = None,
    iterations: int = 4,
    checkpoint_interval: int = 1,
    hidden_size: int = 128,
    num_layers: int = 2,
    seed: int = 0,
    policy: Optional[CheckpointPolicy] = None,
    store_backend: str = "file",
    store_kwargs: Optional[Dict[str, object]] = None,
) -> List[Dict[str, object]]:
    """Per-engine blocked-time rows for every (or the given) engine name."""
    rows = []
    for engine_name in engines or ENGINE_NAMES:
        rows.append(run_real_engine(
            engine_name, workdir,
            iterations=iterations, checkpoint_interval=checkpoint_interval,
            hidden_size=hidden_size, num_layers=num_layers, seed=seed,
            policy=policy, store_backend=store_backend,
            store_kwargs=store_kwargs,
        ))
    return rows


def comparison_table_rows(rows: Sequence[Dict[str, object]]) -> List[Dict[str, object]]:
    """Rounded, display-friendly version of :func:`compare_real_engines` rows."""
    with_drain = any(row.get("drain") for row in rows)
    with_dedup = any(row.get("dedup") for row in rows)
    table = []
    for row in rows:
        entry = {
            "engine": row["engine"],
            "label": row["label"],
            "ckpts": row["checkpoints"],
            "blocked_ms_per_iter": round(float(row["blocked_ms_per_iteration"]), 3),
            "blocked_ms_mean": round(float(row["blocked_ms_per_iteration_mean"]), 3),
            "blocked_total_s": round(float(row["blocked_seconds"]), 4),
            "compute_s": round(float(row["compute_seconds"]), 4),
            "restore_ms": (round(float(row["restore_seconds"]) * 1e3, 3)
                           if row.get("restore_seconds") is not None else None),
        }
        if with_drain:
            drain = row.get("drain") or {}
            entry["drained"] = drain.get("drained_checkpoints")
            entry["evicted"] = drain.get("evicted_checkpoints")
            entry["drain_wait_ms"] = (
                round(float(drain["drain_wait_seconds"]) * 1e3, 3)
                if drain.get("drain_wait_seconds") is not None else None)
            # Backpressure: total time commits spent blocked at the fast
            # tier's watermark (0 unless a level capacity was configured).
            entry["commit_stall_ms"] = (
                round(float(drain["drain_wait_ms"]), 3)
                if drain.get("drain_wait_ms") is not None else None)
        if with_dedup:
            dedup = row.get("dedup") or {}
            entry["bytes_written"] = dedup.get("bytes_written")
            entry["dedup_ratio"] = (
                round(float(dedup["dedup_ratio"]), 4)
                if dedup.get("dedup_ratio") is not None else None)
        table.append(entry)
    return table
