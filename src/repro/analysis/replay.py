"""Replay a failure trace against every engine × store configuration.

``repro replay`` answers the fleet-operations question behind the paper's
motivation: given the failure behaviour of a real (or MTBF-modelled) fleet,
how much goodput does each checkpoint-engine / shard-store combination
actually deliver, how much work is lost per failure, and how long does a
restart take?

The replay is analytic on top of the discrete-event simulator rather than a
rank-per-coroutine simulation of the whole fleet — a multi-thousand-GPU,
multi-day horizon would be intractable to simulate step by step, and the
quantities that matter reduce to a handful of calibrated rates:

1. **Calibration** — a short :func:`~repro.training.simulate_run` per engine
   yields the pure iteration time, the checkpoint-visible stall per
   checkpoint, and the checkpoint footprint per GPU.  This is where the
   engines differ: the synchronous baseline pays the full write on every
   checkpoint while DataStates hides almost all of it.
2. **Failure walk** — the trace's events split the horizon into uptime
   segments.  Work completed up to the last checkpoint before a failure is
   preserved; the tail since that checkpoint is lost.  Restart latency is
   the element's downtime plus the time to re-read the latest checkpoint
   from the store, which is where the stores differ: the parallel file
   system restores at the aggregate PFS bandwidth, the object store over
   the nodes' NICs, and the tiered store from node-local NVMe (except the
   replacement of a dead node, whose local tier is cold and must refetch
   from the slow tier).
3. **Report** — per (engine, store) row: goodput (useful training seconds /
   horizon), lost work, restarts, and mean restart latency.

Identical inputs (trace seed included) produce identical reports — the same
determinism contract the fault-injection side keeps via
:class:`~repro.io.FaultPlan`.
"""

from __future__ import annotations

import math
from typing import Dict, List, Optional, Sequence

from ..config import PlatformSpec
from ..core import ENGINE_NAMES, canonical_engine_name
from ..exceptions import ConfigurationError
from ..io import STORE_NAMES, canonical_store_name
from ..simulator.failures import FailureTrace
from ..training import simulate_run

#: Calibration run length: enough checkpoints to average the stall over.
CALIBRATION_ITERATIONS = 6

#: Effective per-node SHA-256 throughput while a CAS restore hash-verifies
#: every chunk on arrival (single-threaded sha256 on a server CPU, ~2 GB/s).
CAS_VERIFY_BANDWIDTH = 2.0 * 1024**3


def _expand_names(requested: Optional[Sequence[str]], canonical: Sequence[str],
                  canonicalize) -> List[str]:
    """Resolve a CLI-style name list; ``None``/``"all"`` mean every name."""
    if not requested:
        return list(canonical)
    names: List[str] = []
    for name in requested:
        if name == "all":
            for known in canonical:
                if known not in names:
                    names.append(known)
            continue
        resolved = canonicalize(name)
        if resolved not in names:
            names.append(resolved)
    return names


def calibrate_engine(engine_name: str, model_size: str = "13B",
                     checkpoint_interval: int = 5,
                     data_parallel: int = 1,
                     platform: Optional[PlatformSpec] = None,
                     iterations: int = CALIBRATION_ITERATIONS * 5,
                     ) -> Dict[str, float]:
    """Measure one engine's steady-state rates with a short simulated run.

    Returns the pure iteration time, the effective (checkpoint-amortized)
    iteration time, the per-GPU checkpoint footprint, and the wall-clock
    checkpoint period — everything the analytic failure walk needs.  The
    underlying simulation is deterministic, so so is the calibration.
    """
    interval = max(1, int(checkpoint_interval))
    # Run enough iterations for CALIBRATION_ITERATIONS checkpoints.
    iterations = max(iterations, interval * CALIBRATION_ITERATIONS)
    result = simulate_run(
        model_size, engine_name,
        data_parallel=data_parallel,
        iterations=iterations,
        checkpoint_interval=interval,
        platform=platform,
    )
    t_iter = result.training_iteration_seconds
    blocked = result.per_checkpoint_blocked_seconds
    stall_per_ckpt = sum(blocked) / len(blocked) if blocked else 0.0
    effective_iter = t_iter + stall_per_ckpt / interval
    return {
        "engine": result.engine,
        "iteration_seconds": t_iter,
        "stall_seconds_per_checkpoint": stall_per_ckpt,
        "effective_iteration_seconds": effective_iter,
        "checkpoint_period_seconds": interval * effective_iter,
        "checkpoint_bytes_per_gpu": result.checkpoint_bytes_per_rank,
    }


def _restore_seconds(store_name: str, failure_kind: str,
                     platform: PlatformSpec, nodes: int,
                     total_bytes: float) -> float:
    """Time to re-read the latest committed checkpoint after a failure.

    The per-store bandwidth model mirrors how each backend actually restores:

    * ``file`` — every GPU streams its shard from the PFS; the fleet is
      capped by the aggregate PFS bandwidth (§6's restore path).
    * ``object`` — shards come over each node's NIC from the object store,
      still bounded by the store's aggregate service rate.
    * ``tiered`` — survivors restore from node-local NVMe; after a **node**
      failure the replacement's local tier is cold, so its shards refetch
      from the slow tier over its NIC, and the fleet waits for the slowest
      (nearest-tier restore semantics of the tiered store).
    * ``cas`` — chunks stream from the PFS-backed pool at the file-store
      rate, then every node hash-verifies its chunks on the CPU before
      reassembly (the content-addressed read contract), which adds a
      compute-bound term on top of the I/O one.
    """
    gpus = nodes * platform.gpus_per_node
    if store_name == "file":
        bandwidth = min(platform.pfs_aggregate_bandwidth,
                        gpus * platform.pfs_per_stream_bandwidth)
        return platform.pfs_file_latency + total_bytes / bandwidth
    if store_name == "object":
        bandwidth = min(platform.pfs_aggregate_bandwidth,
                        nodes * platform.nic_bandwidth)
        return platform.pfs_file_latency + total_bytes / bandwidth
    if store_name == "tiered":
        local_seconds = total_bytes / (nodes * platform.nvme_write_bandwidth)
        if failure_kind == "node":
            per_node_bytes = total_bytes / nodes
            refetch_bandwidth = min(
                platform.nic_bandwidth,
                platform.gpus_per_node * platform.pfs_per_stream_bandwidth)
            refetch_seconds = per_node_bytes / refetch_bandwidth
            return platform.pfs_file_latency + max(local_seconds, refetch_seconds)
        return platform.pfs_file_latency + local_seconds
    if store_name == "cas":
        bandwidth = min(platform.pfs_aggregate_bandwidth,
                        gpus * platform.pfs_per_stream_bandwidth)
        verify_seconds = (total_bytes / nodes) / CAS_VERIFY_BANDWIDTH
        return (platform.pfs_file_latency + total_bytes / bandwidth
                + verify_seconds)
    raise ConfigurationError(f"no restart model for store {store_name!r}")


def replay_config(trace: FailureTrace, calibration: Dict[str, float],
                  store_name: str, platform: PlatformSpec,
                  tier_links: Optional[Sequence[float]] = None) -> Dict[str, object]:
    """Walk one trace against one calibrated (engine, store) configuration.

    The walk is a pure function of its inputs: uptime segments between
    failures contribute ``floor(segment / period)`` preserved checkpoint
    periods of work; the tail past the last checkpoint is lost; every
    failure costs its downtime plus the store's restore time before the
    next segment starts.  Failures striking while a restart is still in
    progress are absorbed into it (the fleet is already down).

    Tiered stores additionally model the **per-link drain lag**: a
    checkpoint is only as durable as the deepest chain level it has fully
    reached when its node dies.  ``tier_links`` gives each drain link's
    aggregate bandwidth, shallowest first (default for ``tiered``: the
    single fast->slow link over the fleet's NICs, bounded by the slow
    tier's aggregate service rate); the cumulative lag of link ``i`` is how
    long a checkpoint stays un-replicated past level ``i``.  Losing a node
    within the *first* link's lag loses the newest checkpoint entirely —
    its only copy was the dead node's level 0 — so work is preserved only
    up to the previous checkpoint; once any off-node level holds it
    (``delta >= lags[0]``) it survives the node.  The cumulative per-link
    lags are reported as ``drain_link_lag_seconds`` so chain sizing (where
    does the loss window open up?) is readable off the row.
    """
    period = calibration["checkpoint_period_seconds"]
    effective_iter = calibration["effective_iteration_seconds"]
    progress_rate = calibration["iteration_seconds"] / effective_iter
    total_bytes = calibration["checkpoint_bytes_per_gpu"] * trace.nodes * platform.gpus_per_node

    if tier_links is None and store_name == "tiered":
        # The drain streams the whole checkpoint to the slow tier over the
        # fleet's NICs, bounded by the slow tier's aggregate service rate.
        tier_links = [min(trace.nodes * platform.nic_bandwidth,
                          platform.pfs_aggregate_bandwidth)]
    link_lags: List[float] = []
    elapsed = 0.0
    for bandwidth in tier_links or ():
        if bandwidth <= 0:
            raise ConfigurationError("tier_links bandwidths must be positive")
        # Links drain sequentially per checkpoint: level i+1 only starts
        # receiving once level i holds the full checkpoint.
        elapsed += total_bytes / bandwidth
        link_lags.append(elapsed)
    drain_lag = link_lags[0] if link_lags else 0.0

    horizon = trace.horizon_s
    segment_start = 0.0
    useful_seconds = 0.0
    lost_seconds = 0.0
    restarts = 0
    absorbed = 0
    drain_lag_losses = 0
    restart_latency_total = 0.0
    restore_latency_total = 0.0

    for event in trace:
        if event.time < segment_start:
            # The fleet is still down/restarting from the previous failure.
            absorbed += 1
            continue
        segment = event.time - segment_start
        preserved = math.floor(segment / period) * period
        if (event.kind == "node" and preserved > 0.0
                and segment - preserved < drain_lag):
            # The newest checkpoint was still DRAINING when the node died:
            # its fast-tier copy died with the node, so recovery falls back
            # to the last checkpoint the slow tier had fully REPLICATED.
            preserved -= period
            drain_lag_losses += 1
        useful_seconds += preserved * progress_rate
        lost_seconds += (segment - preserved) * progress_rate
        restore = _restore_seconds(store_name, event.kind, platform,
                                   trace.nodes, total_bytes)
        latency = event.downtime + restore
        restarts += 1
        restart_latency_total += latency
        restore_latency_total += restore
        segment_start = event.time + latency

    if segment_start < horizon:
        # Trailing segment: nothing fails after it, so all progress counts.
        useful_seconds += (horizon - segment_start) * progress_rate

    return {
        "engine": calibration["engine"],
        "store": store_name,
        "failures": restarts + absorbed,
        "restarts": restarts,
        "absorbed_failures": absorbed,
        "drain_lag_losses": drain_lag_losses,
        "goodput": useful_seconds / horizon,
        "useful_seconds": useful_seconds,
        "lost_work_seconds": lost_seconds,
        "restart_latency_seconds_total": restart_latency_total,
        "restart_latency_seconds_mean": (restart_latency_total / restarts
                                         if restarts else 0.0),
        "restore_seconds_mean": (restore_latency_total / restarts
                                 if restarts else 0.0),
        "drain_link_lag_seconds": link_lags,
        "checkpoint_period_seconds": period,
        "stall_seconds_per_checkpoint": calibration["stall_seconds_per_checkpoint"],
    }


def replay_trace(trace: FailureTrace,
                 engines: Optional[Sequence[str]] = None,
                 stores: Optional[Sequence[str]] = None,
                 model_size: str = "13B",
                 checkpoint_interval: int = 5,
                 data_parallel: int = 1,
                 platform: Optional[PlatformSpec] = None,
                 ) -> List[Dict[str, object]]:
    """Replay ``trace`` against every requested engine × store config.

    Engines are calibrated once each (the calibration is store-independent:
    it measures the training-visible stall, while the store model governs
    the restart path) and the trace is then walked per store.  Rows come
    back in engine-major order, ready for the CLI table.
    """
    platform = platform or PlatformSpec.polaris()
    engine_names = _expand_names(engines, ENGINE_NAMES, canonical_engine_name)
    store_names = _expand_names(stores, STORE_NAMES, canonical_store_name)
    rows: List[Dict[str, object]] = []
    for engine_name in engine_names:
        calibration = calibrate_engine(
            engine_name, model_size=model_size,
            checkpoint_interval=checkpoint_interval,
            data_parallel=data_parallel, platform=platform)
        for store_name in store_names:
            rows.append(replay_config(trace, calibration, store_name, platform))
    return rows


def replay_table_rows(rows: Sequence[Dict[str, object]]) -> List[Dict[str, object]]:
    """Rounded, display-friendly version of :func:`replay_trace` rows."""
    table = []
    for row in rows:
        table.append({
            "engine": row["engine"],
            "store": row["store"],
            "restarts": row["restarts"],
            "goodput": round(float(row["goodput"]), 4),
            "lost_work_h": round(float(row["lost_work_seconds"]) / 3600.0, 3),
            "restart_s": round(float(row["restart_latency_seconds_mean"]), 1),
            "restore_s": round(float(row["restore_seconds_mean"]), 1),
            "ckpt_period_s": round(float(row["checkpoint_period_seconds"]), 1),
        })
    return table
