"""Simulated cluster topology (Polaris-like).

Builds the hardware objects the training runtime and checkpoint engines use:
per-GPU PCIe paths, per-node NVLink fabric, NIC and node-local NVMe, and the
shared parallel file system.  Global rank numbering is node-major:
``rank = node_id * gpus_per_node + local_gpu``.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import List

from ..config import PlatformSpec
from ..exceptions import ConfigurationError
from ..interconnect import NetworkLink, NVLinkFabric, PCIeLink, make_nic, make_nvlink, make_pcie_link
from ..io import SimNodeLocalStorage, SimParallelFileSystem, make_node_local_storage, make_parallel_fs
from ..simulator import Environment


@dataclass
class SimGPU:
    """One GPU and its host-facing PCIe path."""

    global_rank: int
    node_id: int
    local_index: int
    pcie: PCIeLink


@dataclass
class SimNode:
    """One compute node: GPUs, NVLink fabric, NIC, node-local NVMe."""

    node_id: int
    gpus: List[SimGPU]
    nvlink: NVLinkFabric
    nic: NetworkLink
    nvme: SimNodeLocalStorage
    host_memory: int


@dataclass
class SimCluster:
    """A set of nodes sharing one parallel file system."""

    env: Environment
    platform: PlatformSpec
    nodes: List[SimNode]
    pfs: SimParallelFileSystem

    @property
    def num_nodes(self) -> int:
        """Number of compute nodes."""
        return len(self.nodes)

    @property
    def num_gpus(self) -> int:
        """Total GPU count across nodes."""
        return sum(len(node.gpus) for node in self.nodes)

    @property
    def gpus(self) -> List[SimGPU]:
        """All GPUs in global-rank order."""
        result: List[SimGPU] = []
        for node in self.nodes:
            result.extend(node.gpus)
        result.sort(key=lambda g: g.global_rank)
        return result

    def gpu(self, global_rank: int) -> SimGPU:
        """Look up a GPU by global rank."""
        gpus_per_node = self.platform.gpus_per_node
        node_id, local = divmod(global_rank, gpus_per_node)
        if node_id >= len(self.nodes) or local >= len(self.nodes[node_id].gpus):
            raise ConfigurationError(f"global rank {global_rank} is outside the cluster")
        return self.nodes[node_id].gpus[local]

    def node_of(self, global_rank: int) -> SimNode:
        """The node hosting a given global rank."""
        node_id = global_rank // self.platform.gpus_per_node
        if node_id >= len(self.nodes):
            raise ConfigurationError(f"global rank {global_rank} is outside the cluster")
        return self.nodes[node_id]


def build_cluster(env: Environment, platform: PlatformSpec, num_nodes: int) -> SimCluster:
    """Instantiate a cluster of ``num_nodes`` nodes of the given platform."""
    if num_nodes <= 0:
        raise ConfigurationError("num_nodes must be positive")
    pfs = make_parallel_fs(env, platform)
    nodes: List[SimNode] = []
    for node_id in range(num_nodes):
        gpus: List[SimGPU] = []
        for local in range(platform.gpus_per_node):
            global_rank = node_id * platform.gpus_per_node + local
            gpus.append(
                SimGPU(
                    global_rank=global_rank,
                    node_id=node_id,
                    local_index=local,
                    pcie=make_pcie_link(env, platform, global_rank),
                )
            )
        nodes.append(
            SimNode(
                node_id=node_id,
                gpus=gpus,
                nvlink=make_nvlink(env, platform, node_id),
                nic=make_nic(env, platform, node_id),
                nvme=make_node_local_storage(env, platform, node_id),
                host_memory=platform.host_memory,
            )
        )
    return SimCluster(env=env, platform=platform, nodes=nodes, pfs=pfs)


def cluster_for_gpus(env: Environment, platform: PlatformSpec, num_gpus: int) -> SimCluster:
    """Build the smallest cluster providing at least ``num_gpus`` GPUs."""
    if num_gpus <= 0:
        raise ConfigurationError("num_gpus must be positive")
    num_nodes = -(-num_gpus // platform.gpus_per_node)
    return build_cluster(env, platform, num_nodes)
