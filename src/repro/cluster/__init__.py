"""Simulated cluster topology (nodes, GPUs, interconnects, shared PFS)."""

from .topology import SimCluster, SimGPU, SimNode, build_cluster, cluster_for_gpus

__all__ = ["SimCluster", "SimNode", "SimGPU", "build_cluster", "cluster_for_gpus"]
