"""Training runtimes: the cluster-scale simulation and the real-mode trainer."""

from .collectives import Barrier, SimHostBuffer, allreduce_bytes, allreduce_time, consensus_latency
from .data import DataConfig, SyntheticTokenStream
from .real_trainer import RealTrainer, TrainingReport, TrainStepRecord
from .runtime import IterationRecord, RunResult, SimTrainingRun, simulate_run

__all__ = [
    "Barrier",
    "SimHostBuffer",
    "consensus_latency",
    "allreduce_bytes",
    "allreduce_time",
    "DataConfig",
    "SyntheticTokenStream",
    "RealTrainer",
    "TrainingReport",
    "TrainStepRecord",
    "SimTrainingRun",
    "RunResult",
    "IterationRecord",
    "simulate_run",
]
