"""Synchronisation primitives used by the simulated training runtime.

The implementations live in :mod:`repro.simulator.sync`; this module
re-exports them under the training namespace (they are conceptually part of
the training runtime's collective machinery) and adds simple cost models for
the collectives whose latency the iteration phase model already folds in.
"""

from __future__ import annotations

from ..simulator.sync import Barrier, SimHostBuffer, consensus_latency

__all__ = ["Barrier", "SimHostBuffer", "consensus_latency", "allreduce_bytes", "allreduce_time"]


def allreduce_bytes(payload_bytes: int, world_size: int) -> int:
    """Bytes moved per rank by a ring all-reduce of ``payload_bytes``."""
    if world_size <= 1:
        return 0
    return int(2 * payload_bytes * (world_size - 1) / world_size)


def allreduce_time(payload_bytes: int, world_size: int, bandwidth: float, latency: float = 0.0) -> float:
    """Time of a ring all-reduce given a per-rank link ``bandwidth``."""
    if world_size <= 1 or payload_bytes <= 0:
        return 0.0
    steps = 2 * (world_size - 1)
    return allreduce_bytes(payload_bytes, world_size) / bandwidth + steps * latency
