"""Simulated DeepSpeed/Megatron-style training runtime with checkpoint hooks.

One :class:`SimTrainingRun` executes ``iterations`` training steps of a Table
1 model configuration on a simulated Polaris-like cluster, invoking a
checkpoint engine every ``checkpoint_interval`` iterations, and returns a
:class:`RunResult` with exactly the metrics the paper's evaluation reports
(§6.3): checkpoint throughput perceived by the application, average iteration
duration while checkpointing, and end-to-end runtime including trailing
flushes.

Every rank is a coroutine process.  The optimizer update and the checkpoint
request are blocking collectives (barriers), so the slowest rank's stall is
charged to everyone — the behaviour the paper calls out explicitly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Dict, Generator, List, Optional

from ..checkpoint import SimCheckpointEngine, create_engine
from ..cluster import SimCluster, cluster_for_gpus
from ..config import CheckpointPolicy, PlatformSpec, RunConfig
from ..exceptions import ConfigurationError
from ..model import IterationPhases, ModelRuntimeConfig, phases_for, runtime_config
from ..parallelism import CheckpointPlan, build_checkpoint_plan
from ..simulator import Barrier, Environment, TraceRecorder


@dataclass(frozen=True)
class IterationRecord:
    """Timing of one iteration on one rank."""

    rank: int
    iteration: int
    start: float
    end: float
    blocked_by_checkpoint: float
    had_checkpoint: bool

    @property
    def duration(self) -> float:
        """Wall-clock duration of the iteration."""
        return self.end - self.start


@dataclass
class RunResult:
    """Outcome of one simulated training-plus-checkpointing run."""

    engine: str
    model_name: str
    data_parallel: int
    world_size: int
    iterations: int
    checkpoint_interval: int
    checkpoints_taken: int
    aggregate_checkpoint_bytes: int
    checkpoint_bytes_per_rank: float
    end_to_end_seconds: float
    training_iteration_seconds: float
    avg_iteration_seconds_with_checkpoint: float
    avg_iteration_seconds: float
    per_checkpoint_blocked_seconds: List[float]
    checkpoint_throughput_bytes_per_second: float
    host_buffer_peak_bytes: int
    iteration_records: List[IterationRecord] = field(default_factory=list)
    trace: Optional[TraceRecorder] = None

    @property
    def checkpoint_throughput_gb_per_second(self) -> float:
        """Perceived checkpoint throughput in decimal GB/s (the figures' unit)."""
        return self.checkpoint_throughput_bytes_per_second / 1e9

    @property
    def total_blocked_seconds(self) -> float:
        """Total time the training was blocked by checkpointing."""
        return sum(self.per_checkpoint_blocked_seconds)

    def summary(self) -> Dict[str, float]:
        """Flat summary dict used by reports and benchmarks."""
        return {
            "engine": self.engine,
            "model": self.model_name,
            "data_parallel": self.data_parallel,
            "world_size": self.world_size,
            "iterations": self.iterations,
            "checkpoint_interval": self.checkpoint_interval,
            "checkpoints": self.checkpoints_taken,
            "ckpt_size_gb": self.aggregate_checkpoint_bytes / 1e9,
            "ckpt_size_per_gpu_gb": self.checkpoint_bytes_per_rank / 1e9,
            "ckpt_throughput_gbps": self.checkpoint_throughput_gb_per_second,
            "iter_time_with_ckpt_s": self.avg_iteration_seconds_with_checkpoint,
            "training_iter_time_s": self.training_iteration_seconds,
            "end_to_end_s": self.end_to_end_seconds,
        }


class SimTrainingRun:
    """Drives one engine through a full simulated training run."""

    def __init__(
        self,
        runtime: ModelRuntimeConfig,
        engine_name: str,
        data_parallel: int = 1,
        run_config: Optional[RunConfig] = None,
        policy: Optional[CheckpointPolicy] = None,
        platform: Optional[PlatformSpec] = None,
        phases: Optional[IterationPhases] = None,
        engine_kwargs: Optional[dict] = None,
    ) -> None:
        self.runtime = runtime
        self.engine_name = engine_name
        self.data_parallel = int(data_parallel)
        if self.data_parallel <= 0:
            raise ConfigurationError("data_parallel must be positive")
        self.run_config = run_config or RunConfig()
        self.platform = platform or PlatformSpec.polaris()
        self.policy = policy or CheckpointPolicy(
            host_buffer_size=self.run_config.host_buffer_per_rank
        )
        self.phases = phases or phases_for(runtime.model.name)
        self.engine_kwargs = dict(engine_kwargs or {})

        self.env = Environment()
        self.trace = TraceRecorder()
        self.plan: CheckpointPlan = build_checkpoint_plan(runtime, data_parallel=self.data_parallel)
        world = self.plan.topology.world_size
        self.cluster: SimCluster = cluster_for_gpus(self.env, self.platform, world)
        self.engine: SimCheckpointEngine = create_engine(
            engine_name, self.env, self.cluster, self.plan, self.policy,
            trace=self.trace, **self.engine_kwargs,
        )
        self._update_barrier = Barrier(self.env, world, name="update")
        self._ckpt_barrier = Barrier(self.env, world, name="checkpoint")
        self._final_barrier = Barrier(self.env, world, name="finalize")

        num_ckpts = self._num_checkpoints()
        self._blocked: List[Dict[int, float]] = [dict() for _ in range(num_ckpts)]
        self._iteration_records: List[IterationRecord] = []
        self._rank_done: Dict[int, float] = {}

    # -- schedule helpers -----------------------------------------------------
    def _should_checkpoint(self, iteration: int) -> bool:
        return (iteration + 1) % self.run_config.checkpoint_interval == 0

    def _checkpoint_index(self, iteration: int) -> int:
        return (iteration + 1) // self.run_config.checkpoint_interval - 1

    def _num_checkpoints(self) -> int:
        return self.run_config.iterations // self.run_config.checkpoint_interval

    # -- execution ----------------------------------------------------------------
    def run(self) -> RunResult:
        """Execute the simulation and compute the run metrics."""
        world = self.plan.topology.world_size
        processes = [
            self.env.process(self._rank_process(rank), name=f"train-rank{rank}")
            for rank in range(world)
        ]
        self.env.run()
        for process in processes:
            if process.triggered and not process.ok:
                raise process.value
        return self._build_result()

    def _rank_process(self, rank: int) -> Generator:
        env = self.env
        phases = self.phases
        engine = self.engine
        last_ckpt_index: Optional[int] = None

        for iteration in range(self.run_config.iterations):
            iter_start = env.now
            blocked = 0.0

            yield env.timeout(phases.forward)
            yield env.timeout(phases.backward)

            # Consistency gate: lazy engines wait here for pending D2H copies.
            gate_start = env.now
            yield from engine.before_update(rank, iteration)
            gate_blocked = env.now - gate_start
            if gate_blocked > 0 and last_ckpt_index is not None:
                self._blocked[last_ckpt_index][rank] = (
                    self._blocked[last_ckpt_index].get(rank, 0.0) + gate_blocked
                )
            blocked += gate_blocked

            # The optimizer update is a collective across all ranks.
            yield self._update_barrier.wait()
            yield env.timeout(phases.update)

            had_checkpoint = self._should_checkpoint(iteration)
            if had_checkpoint:
                ckpt_index = self._checkpoint_index(iteration)
                request_start = env.now
                yield from engine.on_checkpoint(rank, iteration)
                yield self._ckpt_barrier.wait()
                ckpt_blocked = env.now - request_start
                self._blocked[ckpt_index][rank] = (
                    self._blocked[ckpt_index].get(rank, 0.0) + ckpt_blocked
                )
                blocked += ckpt_blocked
                last_ckpt_index = ckpt_index

            iter_end = env.now
            self.trace.record_span(f"rank{rank}", "iteration", iter_start, iter_end,
                                   f"iter{iteration}")
            self._iteration_records.append(
                IterationRecord(
                    rank=rank,
                    iteration=iteration,
                    start=iter_start,
                    end=iter_end,
                    blocked_by_checkpoint=blocked,
                    had_checkpoint=had_checkpoint,
                )
            )

        # Drain outstanding flushes; the end-to-end runtime includes them, but
        # they are not charged to any checkpoint's blocking time because the
        # training loop has already finished its last iteration (the paper's
        # perceived-throughput metric only counts stalls during training).
        yield from engine.finalize(rank)
        yield self._final_barrier.wait()
        self._rank_done[rank] = env.now

    # -- metrics ----------------------------------------------------------------------
    def _build_result(self) -> RunResult:
        world = self.plan.topology.world_size
        num_ckpts = self._num_checkpoints()
        per_ckpt_blocked = [
            max(block_map.values()) if block_map else 0.0 for block_map in self._blocked
        ]
        aggregate_bytes = self.plan.total_bytes
        total_blocked = sum(per_ckpt_blocked)
        if num_ckpts > 0:
            # A floor of one millisecond per checkpoint guards the division for
            # engines whose perceived stall rounds to zero in the flow model.
            effective_blocked = max(total_blocked, 1e-3 * num_ckpts)
            throughput = (num_ckpts * aggregate_bytes) / effective_blocked
        else:
            throughput = 0.0

        by_iteration: Dict[int, List[IterationRecord]] = {}
        for record in self._iteration_records:
            by_iteration.setdefault(record.iteration, []).append(record)
        iteration_durations = {
            iteration: max(r.duration for r in records)
            for iteration, records in by_iteration.items()
        }
        ckpt_iterations = [
            iteration for iteration, records in by_iteration.items()
            if any(r.had_checkpoint for r in records)
        ]
        if ckpt_iterations:
            avg_with_ckpt = sum(iteration_durations[i] for i in ckpt_iterations) / len(ckpt_iterations)
        else:
            avg_with_ckpt = self.phases.total
        avg_all = (
            sum(iteration_durations.values()) / len(iteration_durations)
            if iteration_durations else self.phases.total
        )
        peak_buffer = max(
            (state.host_buffer.peak_used for state in self.engine.ranks.values()
             if state.host_buffer is not None),
            default=0,
        )
        end_to_end = max(self._rank_done.values()) if self._rank_done else self.env.now

        return RunResult(
            engine=self.engine.name,
            model_name=self.runtime.model.name,
            data_parallel=self.data_parallel,
            world_size=world,
            iterations=self.run_config.iterations,
            checkpoint_interval=self.run_config.checkpoint_interval,
            checkpoints_taken=num_ckpts,
            aggregate_checkpoint_bytes=aggregate_bytes,
            checkpoint_bytes_per_rank=aggregate_bytes / world,
            end_to_end_seconds=end_to_end,
            training_iteration_seconds=self.phases.total,
            avg_iteration_seconds_with_checkpoint=avg_with_ckpt,
            avg_iteration_seconds=avg_all,
            per_checkpoint_blocked_seconds=per_ckpt_blocked,
            checkpoint_throughput_bytes_per_second=throughput,
            host_buffer_peak_bytes=peak_buffer,
            iteration_records=self._iteration_records,
            trace=self.trace,
        )


def simulate_run(
    model_size: str,
    engine_name: str,
    data_parallel: int = 1,
    iterations: int = 5,
    checkpoint_interval: int = 1,
    platform: Optional[PlatformSpec] = None,
    policy: Optional[CheckpointPolicy] = None,
    host_buffer_per_rank: Optional[int] = None,
    engine_kwargs: Optional[dict] = None,
) -> RunResult:
    """Convenience wrapper: simulate one Table 1 model with one engine.

    This is the main entry point the benchmarks and examples use, e.g.::

        result = simulate_run("13B", "datastates", iterations=5)
        print(result.checkpoint_throughput_gb_per_second)
    """
    runtime = runtime_config(model_size)
    run_config = RunConfig(
        iterations=iterations,
        checkpoint_interval=checkpoint_interval,
        host_buffer_per_rank=host_buffer_per_rank or RunConfig().host_buffer_per_rank,
    )
    run = SimTrainingRun(
        runtime=runtime,
        engine_name=engine_name,
        data_parallel=data_parallel,
        run_config=run_config,
        policy=policy,
        platform=platform,
        engine_kwargs=engine_kwargs,
    )
    return run.run()
