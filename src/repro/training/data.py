"""Synthetic token stream for real-mode training.

The paper trains on a subset of OSCAR-en tokenized with the LLaMA2 tokenizer;
checkpointing behaviour is independent of the token values, so the real-mode
trainer uses a deterministic synthetic stream with the same shape properties
(fixed sequence length, fixed micro-batch size, reproducible given a seed) —
and, importantly for restart tests, the stream position is part of the
checkpointed state so resumed runs see exactly the batches they would have
seen without the failure.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Iterator, Tuple

import numpy as np

from ..exceptions import ConfigurationError


@dataclass(frozen=True)
class DataConfig:
    """Shape of the synthetic token stream."""

    vocab_size: int
    sequence_length: int
    micro_batch_size: int = 4
    seed: int = 1234

    def __post_init__(self) -> None:
        if self.vocab_size <= 1:
            raise ConfigurationError("vocab_size must be at least 2")
        if self.sequence_length <= 1:
            raise ConfigurationError("sequence_length must be at least 2")
        if self.micro_batch_size <= 0:
            raise ConfigurationError("micro_batch_size must be positive")


class SyntheticTokenStream:
    """Deterministic, seekable stream of (tokens, targets) micro-batches."""

    def __init__(self, config: DataConfig) -> None:
        self.config = config
        self._position = 0

    @property
    def position(self) -> int:
        """Number of micro-batches consumed so far (checkpointed)."""
        return self._position

    def state_dict(self) -> Dict[str, int]:
        """Stream state for checkpointing."""
        return {"position": self._position, "seed": self.config.seed}

    def load_state_dict(self, state: Dict[str, int]) -> None:
        """Restore the stream position from a checkpoint."""
        if int(state.get("seed", self.config.seed)) != self.config.seed:
            raise ConfigurationError("data stream seed mismatch on restore")
        self._position = int(state["position"])

    def next_batch(self) -> Tuple[np.ndarray, np.ndarray]:
        """The next (tokens, targets) micro-batch; advances the stream."""
        batch = self.batch_at(self._position)
        self._position += 1
        return batch

    def batch_at(self, index: int) -> Tuple[np.ndarray, np.ndarray]:
        """The micro-batch at an absolute position (does not advance the stream)."""
        if index < 0:
            raise ConfigurationError("batch index must be >= 0")
        cfg = self.config
        rng = np.random.default_rng(np.random.SeedSequence([cfg.seed, index]))
        tokens = rng.integers(0, cfg.vocab_size, size=(cfg.micro_batch_size, cfg.sequence_length),
                              dtype=np.int64)
        # Next-token prediction targets: shift left, wrap the last position.
        targets = np.roll(tokens, -1, axis=1)
        return tokens, targets

    def __iter__(self) -> Iterator[Tuple[np.ndarray, np.ndarray]]:
        while True:
            yield self.next_batch()
