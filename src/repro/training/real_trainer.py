"""Real-mode trainer: an actual NumPy transformer + Adam, checkpointed by any
engine implementing the :class:`~repro.core.CheckpointEngine` protocol.

This is the laptop-scale end-to-end demonstration of the system: every
iteration runs a real forward/backward pass, the checkpoint engine captures
the model and optimizer state (lazily overlapping the next iteration's
forward/backward for the DataStates engine), and the consistency gate
(``wait_for_snapshot``) is honoured right before ``optimizer.step()`` mutates
the state — exactly the integration contract of §5.2.  Training can be
resumed bit-exactly from any committed checkpoint, which the test suite
verifies for all four engines.

The engine can be passed as an instance or selected by registry name, over
any :class:`~repro.io.ShardStore` backend (a ``FileStore`` directory or an
``ObjectStore`` bucket)::

    trainer = RealTrainer(model, engine="datastates", store=FileStore(path))

mirroring how the paper's DeepSpeed integration selects engines via the
single ``checkpoint_engine`` config attribute.
"""

from __future__ import annotations

import statistics
import time
from dataclasses import dataclass, field
from typing import Dict, List, Optional, Union


from ..config import CheckpointPolicy
from ..core import CheckpointEngine, create_real_engine
from ..exceptions import ConfigurationError, RestartError
from ..io import ShardStore
from ..logging_utils import get_logger
from ..model import AdamConfig, AdamOptimizer, NumpyTransformerLM
from ..restart import CheckpointLoader, RestoreSpec
from .data import DataConfig, SyntheticTokenStream

logger = get_logger(__name__)


@dataclass
class TrainStepRecord:
    """Timing and loss of one real training iteration."""

    iteration: int
    loss: float
    compute_seconds: float
    checkpoint_block_seconds: float
    checkpointed: bool


@dataclass
class TrainingReport:
    """Summary of a real-mode training run."""

    steps: List[TrainStepRecord] = field(default_factory=list)
    checkpoints: List[str] = field(default_factory=list)

    @property
    def total_compute_seconds(self) -> float:
        """Sum of per-iteration compute time."""
        return sum(step.compute_seconds for step in self.steps)

    @property
    def total_checkpoint_block_seconds(self) -> float:
        """Sum of per-iteration time blocked by checkpointing."""
        return sum(step.checkpoint_block_seconds for step in self.steps)

    @property
    def blocked_seconds_per_iteration(self) -> float:
        """Mean training-visible checkpoint stall per iteration."""
        if not self.steps:
            return 0.0
        return self.total_checkpoint_block_seconds / len(self.steps)

    @property
    def median_blocked_seconds_per_iteration(self) -> float:
        """Median per-iteration checkpoint stall — the robust engine-comparison
        statistic: on small (single-CPU) hosts the background flush threads
        occasionally steal a scheduling quantum from the training thread, and
        those spikes say nothing about which engine blocks training."""
        if not self.steps:
            return 0.0
        return statistics.median(step.checkpoint_block_seconds for step in self.steps)

    @property
    def losses(self) -> List[float]:
        """Loss trajectory."""
        return [step.loss for step in self.steps]


class RealTrainer:
    """Trains a :class:`NumpyTransformerLM` under any checkpoint engine."""

    def __init__(
        self,
        model: NumpyTransformerLM,
        engine: Union[CheckpointEngine, str, None] = None,
        data: Optional[SyntheticTokenStream] = None,
        adam: Optional[AdamConfig] = None,
        micro_batch_size: int = 4,
        store: Optional[ShardStore] = None,
        policy: Optional[CheckpointPolicy] = None,
    ) -> None:
        if isinstance(engine, str):
            if store is None:
                raise ConfigurationError(
                    "selecting an engine by name needs a store: "
                    "RealTrainer(model, engine=\"datastates\", store=FileStore(path))"
                )
            engine = create_real_engine(engine, store, policy=policy)
            self.owns_engine = True
        else:
            self.owns_engine = False
        self.model = model
        self.engine = engine
        try:
            self.optimizer = AdamOptimizer(model.params, adam or AdamConfig(learning_rate=1e-3))
            self.data = data or SyntheticTokenStream(
                DataConfig(
                    vocab_size=model.config.vocab_size,
                    sequence_length=min(model.config.sequence_length, 32),
                    micro_batch_size=micro_batch_size,
                )
            )
        except BaseException:
            # Don't orphan the engine (and its background threads/pool) we
            # just created from a registry name.
            self.close()
            raise
        self.iteration = 0

    # -- lifecycle ---------------------------------------------------------------
    def close(self) -> None:
        """Shut down an engine this trainer created from a registry name."""
        if self.owns_engine and self.engine is not None:
            self.engine.shutdown()

    def __enter__(self) -> "RealTrainer":
        return self

    def __exit__(self, exc_type, exc, tb) -> None:
        self.close()

    # -- state dict --------------------------------------------------------------
    def state_dict(self) -> Dict[str, object]:
        """Everything needed to resume training bit-exactly."""
        return {
            "iteration": self.iteration,
            "model": self.model.state_dict(),
            "optimizer": self.optimizer.state_dict(),
            "data": self.data.state_dict(),
        }

    def load_state_dict(self, state: Dict[str, object]) -> None:
        """Restore trainer state from a checkpoint."""
        try:
            self.iteration = int(state["iteration"])
            self.model.load_state_dict(state["model"])  # type: ignore[arg-type]
            self.optimizer.load_state_dict(state["optimizer"])  # type: ignore[arg-type]
            self.data.load_state_dict(state["data"])  # type: ignore[arg-type]
        except KeyError as exc:
            raise RestartError(f"checkpoint state is missing field {exc}") from exc

    # -- training loop ---------------------------------------------------------------
    def train(self, iterations: int, checkpoint_interval: int = 0,
              tag_prefix: str = "ckpt") -> TrainingReport:
        """Run ``iterations`` steps, checkpointing every ``checkpoint_interval``.

        ``checkpoint_interval=0`` disables checkpointing.
        """
        report = TrainingReport()
        for _ in range(iterations):
            tokens, targets = self.data.next_batch()

            compute_start = time.perf_counter()
            _logits, loss, cache = self.model.forward(tokens, targets)
            grads = self.model.backward(cache)
            compute_seconds = time.perf_counter() - compute_start

            # Consistency gate: previous lazy snapshots must finish before the
            # optimizer mutates the parameters they reference.
            block_seconds = 0.0
            if self.engine is not None:
                gate_start = time.perf_counter()
                self.engine.wait_for_snapshot()
                block_seconds = time.perf_counter() - gate_start

            self.optimizer.step(grads)
            self.iteration += 1

            checkpointed = False
            if (
                self.engine is not None
                and checkpoint_interval > 0
                and self.iteration % checkpoint_interval == 0
            ):
                tag = f"{tag_prefix}-{self.iteration:06d}"
                request_start = time.perf_counter()
                self.engine.save(self.state_dict(), tag=tag, iteration=self.iteration)
                block_seconds += time.perf_counter() - request_start
                report.checkpoints.append(tag)
                checkpointed = True

            assert loss is not None
            report.steps.append(
                TrainStepRecord(
                    iteration=self.iteration,
                    loss=loss,
                    compute_seconds=compute_seconds,
                    checkpoint_block_seconds=block_seconds,
                    checkpointed=checkpointed,
                )
            )
        return report

    # -- restart ------------------------------------------------------------------------
    def resume_from(self, source: Union[CheckpointLoader, CheckpointEngine, None] = None,
                    tag: Optional[str] = None, rank: int = 0) -> str:
        """Restore the trainer from the latest (or a named) committed checkpoint.

        ``source`` may be a :class:`~repro.restart.CheckpointLoader`, any
        :class:`~repro.core.CheckpointEngine` (the engine protocol's ``load``
        path), or ``None`` to use this trainer's own engine.
        """
        if source is None:
            source = self.engine
        if source is None:
            raise RestartError("no loader or engine to resume from")
        if isinstance(source, CheckpointEngine):
            if tag is None:
                tag = source.latest_checkpoint()
                if tag is None:
                    raise RestartError("no committed checkpoint to resume from")
            state = source.load(RestoreSpec.of_shard(f"rank{rank}", tag=tag))
        else:
            if tag is None:
                info = source.latest()
                if info is None:
                    raise RestartError("no committed checkpoint to resume from")
                tag = info.tag
            state = source.restore(RestoreSpec.of_rank(rank, tag=tag))
        self.load_state_dict(state)
        logger.info("resumed training from checkpoint %s at iteration %d", tag, self.iteration)
        return tag
