"""Training-iteration phase model (Figure 4).

The checkpointing study needs to know how long the forward pass, backward
pass, and optimizer update of each model take, because the DataStates design
hides device-to-host copies *inside* the forward+backward window and delays
the update until the copies complete.  The absolute durations depend on the
authors' Polaris testbed; we calibrate against the per-model measurements the
paper publishes in Figure 4 and interpolate (linearly in parameter count) for
model sizes in between.

The measured phase durations include pipeline/tensor-parallel communication,
which is why they are attached to the Table 1 runtime layout rather than to
raw FLOP counts.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Tuple

from ..exceptions import ConfigurationError
from .llm_zoo import MODEL_SIZES, model_config
from .transformer import TransformerConfig


@dataclass(frozen=True)
class IterationPhases:
    """Durations of one training iteration's phases, in seconds."""

    forward: float
    backward: float
    update: float

    def __post_init__(self) -> None:
        if self.forward < 0 or self.backward < 0 or self.update < 0:
            raise ConfigurationError("phase durations must be non-negative")

    @property
    def total(self) -> float:
        """Full iteration duration without any checkpointing overhead."""
        return self.forward + self.backward + self.update

    @property
    def immutable_window(self) -> float:
        """Time during which model/optimizer state is immutable (fwd + bwd).

        This is the window the lazy snapshot overlaps with (§4.2).
        """
        return self.forward + self.backward

    def scaled(self, factor: float) -> "IterationPhases":
        """Uniformly scale every phase (used for what-if experiments)."""
        return IterationPhases(self.forward * factor, self.backward * factor, self.update * factor)


#: Figure 4 measurements: model size -> (forward, backward, update) seconds.
FIGURE4_PHASES: Dict[str, IterationPhases] = {
    "3B": IterationPhases(forward=0.81, backward=0.79, update=0.10),
    "7B": IterationPhases(forward=1.26, backward=1.82, update=0.12),
    "13B": IterationPhases(forward=1.85, backward=3.56, update=0.09),
    "30B": IterationPhases(forward=3.72, backward=8.58, update=0.11),
    "70B": IterationPhases(forward=6.71, backward=16.82, update=0.07),
}


def phases_for(size_or_config: "str | TransformerConfig") -> IterationPhases:
    """Phase durations for a Table 1 model (or an interpolated custom config)."""
    if isinstance(size_or_config, str):
        try:
            return FIGURE4_PHASES[size_or_config]
        except KeyError as exc:
            raise ConfigurationError(
                f"no Figure 4 calibration for model size {size_or_config!r}"
            ) from exc
    return interpolate_phases(size_or_config)


def interpolate_phases(config: TransformerConfig) -> IterationPhases:
    """Interpolate/extrapolate phase durations by total parameter count."""
    anchors: list[Tuple[float, IterationPhases]] = []
    for size in MODEL_SIZES:
        anchors.append((float(model_config(size).total_parameters()), FIGURE4_PHASES[size]))
    anchors.sort(key=lambda item: item[0])
    params = float(config.total_parameters())
    if params <= anchors[0][0]:
        lo, hi = anchors[0], anchors[1]
    elif params >= anchors[-1][0]:
        lo, hi = anchors[-2], anchors[-1]
    else:
        lo, hi = anchors[0], anchors[-1]
        for left, right in zip(anchors, anchors[1:]):
            if left[0] <= params <= right[0]:
                lo, hi = left, right
                break
    span = hi[0] - lo[0]
    weight = 0.0 if span == 0 else (params - lo[0]) / span
    forward = lo[1].forward + weight * (hi[1].forward - lo[1].forward)
    backward = lo[1].backward + weight * (hi[1].backward - lo[1].backward)
    update = lo[1].update + weight * (hi[1].update - lo[1].update)
    return IterationPhases(forward=max(forward, 1e-4),
                           backward=max(backward, 1e-4),
                           update=max(update, 1e-4))


def phase_breakdown_table() -> Dict[str, Dict[str, float]]:
    """The Figure 4 table in report-friendly form."""
    table: Dict[str, Dict[str, float]] = {}
    for size in MODEL_SIZES:
        phases = FIGURE4_PHASES[size]
        table[size] = {
            "forward_s": phases.forward,
            "backward_s": phases.backward,
            "update_s": phases.update,
            "iteration_s": phases.total,
            "immutable_fraction": phases.immutable_window / phases.total,
        }
    return table
