"""Model zoo — Table 1 of the paper.

The five model sizes used throughout the evaluation, derived from BLOOM (3B)
and LLaMA/LLaMA2 (7B, 13B, 30B, 70B), together with the runtime configuration
the paper pairs with each size: tensor-parallel degree 4 (the number of GPUs
per Polaris node), pipeline parallelism equal to the number of nodes, ZeRO
stage 1, and (unless stated otherwise) data-parallel degree 1.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..exceptions import ConfigurationError
from .transformer import TransformerConfig


@dataclass(frozen=True)
class ModelRuntimeConfig:
    """One row of Table 1: the model plus its 3D-parallel runtime layout."""

    model: TransformerConfig
    num_nodes: int
    tensor_parallel: int
    pipeline_parallel: int
    zero_stage: int = 1
    micro_batch_size: int = 16

    def __post_init__(self) -> None:
        if self.num_nodes <= 0:
            raise ConfigurationError("num_nodes must be positive")
        if self.tensor_parallel <= 0 or self.pipeline_parallel <= 0:
            raise ConfigurationError("parallelism degrees must be positive")
        if self.zero_stage not in (0, 1, 2, 3):
            raise ConfigurationError("zero_stage must be 0..3")

    @property
    def gpus_per_replica(self) -> int:
        """GPUs used by a single model replica (TP x PP)."""
        return self.tensor_parallel * self.pipeline_parallel

    def total_gpus(self, data_parallel: int = 1) -> int:
        """GPUs used by the whole job for a given data-parallel degree."""
        if data_parallel <= 0:
            raise ConfigurationError("data_parallel must be positive")
        return self.gpus_per_replica * data_parallel


#: Table 1 architecture rows (layers, hidden dim, attention heads).  The 3B
#: model is BLOOM-3B (250k multilingual vocabulary); the others are
#: LLaMA/LLaMA2-derived (32k vocabulary), as stated in §6.3 of the paper.
_TABLE_1 = {
    "3B": dict(num_layers=30, hidden_size=2560, num_attention_heads=32, num_nodes=1,
               vocab_size=250_880),
    "7B": dict(num_layers=32, hidden_size=4096, num_attention_heads=32, num_nodes=2,
               vocab_size=32_000),
    "13B": dict(num_layers=40, hidden_size=5120, num_attention_heads=40, num_nodes=4,
                vocab_size=32_000),
    "30B": dict(num_layers=60, hidden_size=6656, num_attention_heads=52, num_nodes=8,
                vocab_size=32_000),
    "70B": dict(num_layers=80, hidden_size=8192, num_attention_heads=64, num_nodes=20,
                vocab_size=32_000),
}

MODEL_SIZES: List[str] = list(_TABLE_1.keys())


def model_config(size: str) -> TransformerConfig:
    """The architecture of one Table 1 model ("3B", "7B", "13B", "30B", "70B")."""
    try:
        row = _TABLE_1[size]
    except KeyError as exc:
        raise ConfigurationError(
            f"unknown model size {size!r}; expected one of {MODEL_SIZES}"
        ) from exc
    return TransformerConfig(
        name=size,
        num_layers=row["num_layers"],
        hidden_size=row["hidden_size"],
        num_attention_heads=row["num_attention_heads"],
        vocab_size=row["vocab_size"],
    )


def runtime_config(size: str, gpus_per_node: int = 4) -> ModelRuntimeConfig:
    """The Table 1 runtime layout for one model size.

    Tensor parallelism equals the number of GPUs per node (4 on Polaris);
    pipeline parallelism equals the number of nodes a single replica spans.
    """
    row = _TABLE_1.get(size)
    if row is None:
        raise ConfigurationError(
            f"unknown model size {size!r}; expected one of {MODEL_SIZES}"
        )
    return ModelRuntimeConfig(
        model=model_config(size),
        num_nodes=row["num_nodes"],
        tensor_parallel=gpus_per_node,
        pipeline_parallel=row["num_nodes"],
    )


def table1() -> Dict[str, ModelRuntimeConfig]:
    """All Table 1 rows keyed by model size."""
    return {size: runtime_config(size) for size in MODEL_SIZES}


def tiny_config(name: str = "tiny", num_layers: int = 2, hidden_size: int = 64,
                num_attention_heads: int = 4, vocab_size: int = 257,
                sequence_length: int = 32) -> TransformerConfig:
    """A laptop-scale config for real-mode examples and tests."""
    return TransformerConfig(
        name=name,
        num_layers=num_layers,
        hidden_size=hidden_size,
        num_attention_heads=num_attention_heads,
        vocab_size=vocab_size,
        sequence_length=sequence_length,
    )
