"""Transformer model accounting: parameters, state sizes, checkpoint sizes.

The checkpointing study only needs *sizes*, not values: how many parameters
a GPT-style decoder of a given depth/width has, how those bytes split into
model parameters vs optimizer state, and how they are distributed across
layers (Figure 3, §4.1).  The accounting follows the standard GPT/LLaMA
decoder layout used by Megatron-LM:

* token embedding ``vocab x hidden`` (tied with the output projection),
* position embedding ``seq_len x hidden``,
* per layer: QKV projection ``3 h^2``, attention output ``h^2``, MLP
  ``2 * h * ffn_hidden``, two LayerNorms, biases,
* a final LayerNorm.

Checkpoint bytes per parameter follow DeepSpeed ZeRO stage-1 mixed-precision
training: 2 bytes of bf16/fp16 model weights (replicated per DP rank but
checkpointed once per model-parallel shard) plus 12 bytes of optimizer state
(fp32 master weights, momentum and variance) partitioned across data-parallel
ranks.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, List

from ..exceptions import ConfigurationError

#: Bytes per parameter of bf16/fp16 model weights.
MODEL_BYTES_PER_PARAM = 2
#: Bytes per parameter of Adam optimizer state under mixed precision
#: (fp32 master copy + fp32 momentum + fp32 variance).
OPTIMIZER_BYTES_PER_PARAM = 12


@dataclass(frozen=True)
class TransformerConfig:
    """Architecture hyper-parameters of a decoder-only transformer."""

    name: str
    num_layers: int
    hidden_size: int
    num_attention_heads: int
    vocab_size: int = 50_304
    sequence_length: int = 2048
    ffn_multiplier: int = 4

    def __post_init__(self) -> None:
        if self.num_layers <= 0 or self.hidden_size <= 0 or self.num_attention_heads <= 0:
            raise ConfigurationError("layers, hidden size, and heads must be positive")
        if self.hidden_size % self.num_attention_heads != 0:
            raise ConfigurationError(
                f"hidden size {self.hidden_size} not divisible by "
                f"{self.num_attention_heads} attention heads"
            )
        if self.vocab_size <= 0 or self.sequence_length <= 0:
            raise ConfigurationError("vocab size and sequence length must be positive")

    # -- parameter counts ---------------------------------------------------
    @property
    def ffn_hidden_size(self) -> int:
        """Width of the MLP hidden layer."""
        return self.ffn_multiplier * self.hidden_size

    def embedding_parameters(self) -> int:
        """Token + position embedding parameters."""
        return self.vocab_size * self.hidden_size + self.sequence_length * self.hidden_size

    def layer_parameters(self) -> int:
        """Parameters of one transformer layer (attention + MLP + norms)."""
        h = self.hidden_size
        ffn = self.ffn_hidden_size
        attention = 3 * h * h + 3 * h + h * h + h     # QKV + out projection (+bias)
        mlp = h * ffn + ffn + ffn * h + h             # two linear layers (+bias)
        norms = 4 * h                                  # two LayerNorms (gain+bias)
        return attention + mlp + norms

    def final_norm_parameters(self) -> int:
        """Parameters of the final LayerNorm."""
        return 2 * self.hidden_size

    def total_parameters(self) -> int:
        """Total trainable parameters."""
        return (
            self.embedding_parameters()
            + self.num_layers * self.layer_parameters()
            + self.final_norm_parameters()
        )

    # -- state sizes ----------------------------------------------------------
    def model_state_bytes(self) -> int:
        """Bytes of bf16/fp16 model weights."""
        return self.total_parameters() * MODEL_BYTES_PER_PARAM

    def optimizer_state_bytes(self) -> int:
        """Bytes of fp32 Adam optimizer state (master weights, m, v)."""
        return self.total_parameters() * OPTIMIZER_BYTES_PER_PARAM

    def checkpoint_bytes(self) -> int:
        """Total checkpoint size: model weights + optimizer state."""
        return self.model_state_bytes() + self.optimizer_state_bytes()

    def layer_parameter_counts(self) -> List[int]:
        """Per-"layer group" parameter counts used for pipeline partitioning.

        Index 0 holds the embeddings, indices 1..num_layers hold transformer
        layers, and the final entry holds the output LayerNorm, matching how
        Megatron assigns embedding/head layers to the first/last pipeline
        stage.
        """
        counts = [self.embedding_parameters()]
        counts.extend(self.layer_parameters() for _ in range(self.num_layers))
        counts.append(self.final_norm_parameters())
        return counts

    def describe(self) -> Dict[str, float]:
        """A summary dict used by reports and benchmarks."""
        params = self.total_parameters()
        return {
            "name": self.name,
            "layers": self.num_layers,
            "hidden_size": self.hidden_size,
            "attention_heads": self.num_attention_heads,
            "parameters_billion": params / 1e9,
            "model_state_gb": self.model_state_bytes() / 1e9,
            "optimizer_state_gb": self.optimizer_state_bytes() / 1e9,
            "checkpoint_gb": self.checkpoint_bytes() / 1e9,
        }
