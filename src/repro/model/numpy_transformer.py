"""A real, trainable decoder-only transformer implemented in NumPy.

The original system checkpoints DeepSpeed/Megatron models running on GPUs.
For the real-execution mode of this reproduction we need an actual model
whose parameters and optimizer state change every iteration, so that
checkpoint/restore correctness can be verified end to end (bit-exact resume,
torn-checkpoint detection, ...).  This module provides a compact GPT-style
language model with a hand-written backward pass — no autograd framework is
available offline — sufficient to drive the real-mode trainer and the
quickstart example.

Parameters are stored in a flat ``{name: ndarray}`` dict (e.g.
``"blocks.3.w_qkv"``) which doubles as the model part of the checkpoint
state dict.
"""

from __future__ import annotations

import math
from dataclasses import dataclass
from typing import Dict, Optional, Tuple

import numpy as np

from ..exceptions import ConfigurationError
from .transformer import TransformerConfig

Params = Dict[str, np.ndarray]
Grads = Dict[str, np.ndarray]


# ---------------------------------------------------------------------------
# Primitive ops (forward + backward)
# ---------------------------------------------------------------------------

_GELU_C = math.sqrt(2.0 / math.pi)


def gelu(x: np.ndarray) -> np.ndarray:
    """Tanh-approximation GELU."""
    return 0.5 * x * (1.0 + np.tanh(_GELU_C * (x + 0.044715 * x**3)))


def gelu_backward(x: np.ndarray, dy: np.ndarray) -> np.ndarray:
    """Gradient of tanh-approximation GELU."""
    u = _GELU_C * (x + 0.044715 * x**3)
    t = np.tanh(u)
    du_dx = _GELU_C * (1.0 + 3.0 * 0.044715 * x**2)
    return dy * (0.5 * (1.0 + t) + 0.5 * x * (1.0 - t**2) * du_dx)


def layer_norm(x: np.ndarray, gain: np.ndarray, bias: np.ndarray, eps: float = 1e-5):
    """LayerNorm over the last axis; returns (y, cache)."""
    mean = x.mean(axis=-1, keepdims=True)
    var = x.var(axis=-1, keepdims=True)
    inv_std = 1.0 / np.sqrt(var + eps)
    xhat = (x - mean) * inv_std
    y = gain * xhat + bias
    return y, (xhat, inv_std, gain)


def layer_norm_backward(dy: np.ndarray, cache) -> Tuple[np.ndarray, np.ndarray, np.ndarray]:
    """Backward of :func:`layer_norm`; returns (dx, dgain, dbias)."""
    xhat, inv_std, gain = cache
    reduce_axes = tuple(range(dy.ndim - 1))
    dgain = (dy * xhat).sum(axis=reduce_axes)
    dbias = dy.sum(axis=reduce_axes)
    dxhat = dy * gain
    mean_dxhat = dxhat.mean(axis=-1, keepdims=True)
    mean_dxhat_xhat = (dxhat * xhat).mean(axis=-1, keepdims=True)
    dx = inv_std * (dxhat - mean_dxhat - xhat * mean_dxhat_xhat)
    return dx, dgain, dbias


def softmax(x: np.ndarray, axis: int = -1) -> np.ndarray:
    """Numerically stable softmax."""
    shifted = x - x.max(axis=axis, keepdims=True)
    exp = np.exp(shifted)
    return exp / exp.sum(axis=axis, keepdims=True)


def cross_entropy(logits: np.ndarray, targets: np.ndarray) -> Tuple[float, np.ndarray]:
    """Mean token-level cross entropy; returns (loss, dlogits)."""
    batch, seq, vocab = logits.shape
    probs = softmax(logits, axis=-1)
    flat_probs = probs.reshape(-1, vocab)
    flat_targets = targets.reshape(-1)
    picked = flat_probs[np.arange(flat_targets.size), flat_targets]
    loss = float(-np.log(np.maximum(picked, 1e-12)).mean())
    dlogits = flat_probs.copy()
    dlogits[np.arange(flat_targets.size), flat_targets] -= 1.0
    dlogits /= flat_targets.size
    return loss, dlogits.reshape(batch, seq, vocab)


# ---------------------------------------------------------------------------
# The model
# ---------------------------------------------------------------------------


@dataclass
class _BlockCache:
    """Forward activations of one transformer block needed for backward."""

    x_in: np.ndarray
    ln1: tuple
    ln1_out: np.ndarray
    qkv: np.ndarray
    q: np.ndarray
    k: np.ndarray
    v: np.ndarray
    att_probs: np.ndarray
    att_out_merged: np.ndarray
    attn_residual: np.ndarray
    ln2: tuple
    ln2_out: np.ndarray
    fc_pre: np.ndarray
    fc_act: np.ndarray


class NumpyTransformerLM:
    """A small GPT-style causal language model with manual backpropagation."""

    def __init__(self, config: TransformerConfig, seed: int = 0, dtype=np.float32) -> None:
        if config.sequence_length <= 1:
            raise ConfigurationError("sequence_length must be at least 2")
        self.config = config
        self.dtype = np.dtype(dtype)
        self.head_dim = config.hidden_size // config.num_attention_heads
        self.params: Params = self._init_parameters(seed)

    # -- parameters -----------------------------------------------------------
    def _init_parameters(self, seed: int) -> Params:
        cfg = self.config
        rng = np.random.default_rng(seed)
        scale = 0.02
        params: Params = {
            "wte": rng.normal(0.0, scale, (cfg.vocab_size, cfg.hidden_size)),
            "wpe": rng.normal(0.0, scale, (cfg.sequence_length, cfg.hidden_size)),
            "lnf_g": np.ones(cfg.hidden_size),
            "lnf_b": np.zeros(cfg.hidden_size),
        }
        for layer in range(cfg.num_layers):
            prefix = f"blocks.{layer}."
            params[prefix + "ln1_g"] = np.ones(cfg.hidden_size)
            params[prefix + "ln1_b"] = np.zeros(cfg.hidden_size)
            params[prefix + "w_qkv"] = rng.normal(0.0, scale, (cfg.hidden_size, 3 * cfg.hidden_size))
            params[prefix + "b_qkv"] = np.zeros(3 * cfg.hidden_size)
            params[prefix + "w_proj"] = rng.normal(0.0, scale, (cfg.hidden_size, cfg.hidden_size))
            params[prefix + "b_proj"] = np.zeros(cfg.hidden_size)
            params[prefix + "ln2_g"] = np.ones(cfg.hidden_size)
            params[prefix + "ln2_b"] = np.zeros(cfg.hidden_size)
            params[prefix + "w_fc"] = rng.normal(0.0, scale, (cfg.hidden_size, cfg.ffn_hidden_size))
            params[prefix + "b_fc"] = np.zeros(cfg.ffn_hidden_size)
            params[prefix + "w_out"] = rng.normal(0.0, scale, (cfg.ffn_hidden_size, cfg.hidden_size))
            params[prefix + "b_out"] = np.zeros(cfg.hidden_size)
        return {name: value.astype(self.dtype) for name, value in params.items()}

    def num_parameters(self) -> int:
        """Total number of scalar parameters."""
        return int(sum(p.size for p in self.params.values()))

    def state_bytes(self) -> int:
        """Bytes occupied by the parameters."""
        return int(sum(p.nbytes for p in self.params.values()))

    # -- forward -----------------------------------------------------------------
    def forward(self, tokens: np.ndarray, targets: Optional[np.ndarray] = None):
        """Run the model.

        Returns ``(logits, loss, cache)``; ``loss`` is None without targets.
        """
        cfg = self.config
        tokens = np.asarray(tokens)
        if tokens.ndim != 2:
            raise ConfigurationError("tokens must have shape [batch, seq]")
        batch, seq = tokens.shape
        if seq > cfg.sequence_length:
            raise ConfigurationError(f"sequence of length {seq} exceeds context {cfg.sequence_length}")
        if tokens.min() < 0 or tokens.max() >= cfg.vocab_size:
            raise ConfigurationError("token id out of range")

        params = self.params
        x = params["wte"][tokens] + params["wpe"][:seq][None, :, :]
        x = x.astype(self.dtype)
        block_caches = []
        for layer in range(cfg.num_layers):
            x, cache = self._block_forward(x, layer)
            block_caches.append(cache)
        final, lnf_cache = layer_norm(x, params["lnf_g"], params["lnf_b"])
        logits = final @ params["wte"].T

        loss = None
        dlogits = None
        if targets is not None:
            loss, dlogits = cross_entropy(logits, np.asarray(targets))
        cache = {
            "tokens": tokens,
            "block_caches": block_caches,
            "lnf_cache": lnf_cache,
            "final": final,
            "dlogits": dlogits,
            "seq": seq,
        }
        return logits, loss, cache

    def _block_forward(self, x: np.ndarray, layer: int):
        cfg = self.config
        p = self.params
        prefix = f"blocks.{layer}."
        batch, seq, hidden = x.shape
        heads, head_dim = cfg.num_attention_heads, self.head_dim

        ln1_out, ln1_cache = layer_norm(x, p[prefix + "ln1_g"], p[prefix + "ln1_b"])
        qkv = ln1_out @ p[prefix + "w_qkv"] + p[prefix + "b_qkv"]
        q, k, v = np.split(qkv, 3, axis=-1)
        # [batch, heads, seq, head_dim]
        q = q.reshape(batch, seq, heads, head_dim).transpose(0, 2, 1, 3)
        k = k.reshape(batch, seq, heads, head_dim).transpose(0, 2, 1, 3)
        v = v.reshape(batch, seq, heads, head_dim).transpose(0, 2, 1, 3)
        scores = (q @ k.transpose(0, 1, 3, 2)) / math.sqrt(head_dim)
        mask = np.triu(np.ones((seq, seq), dtype=bool), k=1)
        scores = np.where(mask, -1e9, scores)
        probs = softmax(scores, axis=-1)
        att = probs @ v  # [batch, heads, seq, head_dim]
        merged = att.transpose(0, 2, 1, 3).reshape(batch, seq, hidden)
        attn_out = merged @ p[prefix + "w_proj"] + p[prefix + "b_proj"]
        x_attn = x + attn_out

        ln2_out, ln2_cache = layer_norm(x_attn, p[prefix + "ln2_g"], p[prefix + "ln2_b"])
        fc_pre = ln2_out @ p[prefix + "w_fc"] + p[prefix + "b_fc"]
        fc_act = gelu(fc_pre)
        mlp_out = fc_act @ p[prefix + "w_out"] + p[prefix + "b_out"]
        y = x_attn + mlp_out

        cache = _BlockCache(
            x_in=x, ln1=ln1_cache, ln1_out=ln1_out, qkv=qkv, q=q, k=k, v=v,
            att_probs=probs, att_out_merged=merged, attn_residual=x_attn,
            ln2=ln2_cache, ln2_out=ln2_out, fc_pre=fc_pre, fc_act=fc_act,
        )
        return y, cache

    # -- backward --------------------------------------------------------------------
    def backward(self, cache) -> Grads:
        """Compute parameter gradients from a forward cache (targets required)."""
        if cache["dlogits"] is None:
            raise ConfigurationError("backward() requires a forward pass with targets")
        cfg = self.config
        p = self.params
        grads: Grads = {name: np.zeros_like(value) for name, value in p.items()}

        dlogits = cache["dlogits"]
        final = cache["final"]
        tokens = cache["tokens"]
        seq = cache["seq"]
        batch = tokens.shape[0]
        hidden = cfg.hidden_size
        vocab = cfg.vocab_size

        # logits = final @ wte.T  (weight tying)
        flat_dlogits = dlogits.reshape(-1, vocab)
        flat_final = final.reshape(-1, hidden)
        grads["wte"] += flat_dlogits.T @ flat_final
        dfinal = (flat_dlogits @ p["wte"]).reshape(batch, seq, hidden)

        dx, dg, db = layer_norm_backward(dfinal, cache["lnf_cache"])
        grads["lnf_g"] += dg
        grads["lnf_b"] += db

        for layer in reversed(range(cfg.num_layers)):
            dx = self._block_backward(dx, cache["block_caches"][layer], layer, grads)

        # Embedding gradients.
        np.add.at(grads["wte"], tokens, dx)
        grads["wpe"][:seq] += dx.sum(axis=0)
        return grads

    def _block_backward(self, dy: np.ndarray, cache: _BlockCache, layer: int, grads: Grads) -> np.ndarray:
        cfg = self.config
        p = self.params
        prefix = f"blocks.{layer}."
        batch, seq, hidden = dy.shape
        heads, head_dim = cfg.num_attention_heads, self.head_dim

        # y = x_attn + mlp_out
        dmlp_out = dy
        dx_attn = dy.copy()

        # mlp_out = gelu(ln2_out @ w_fc + b_fc) @ w_out + b_out
        flat_fc_act = cache.fc_act.reshape(-1, cfg.ffn_hidden_size)
        flat_dmlp = dmlp_out.reshape(-1, hidden)
        grads[prefix + "w_out"] += flat_fc_act.T @ flat_dmlp
        grads[prefix + "b_out"] += flat_dmlp.sum(axis=0)
        dfc_act = (flat_dmlp @ p[prefix + "w_out"].T).reshape(batch, seq, cfg.ffn_hidden_size)
        dfc_pre = gelu_backward(cache.fc_pre, dfc_act)
        flat_ln2 = cache.ln2_out.reshape(-1, hidden)
        flat_dfc_pre = dfc_pre.reshape(-1, cfg.ffn_hidden_size)
        grads[prefix + "w_fc"] += flat_ln2.T @ flat_dfc_pre
        grads[prefix + "b_fc"] += flat_dfc_pre.sum(axis=0)
        dln2_out = (flat_dfc_pre @ p[prefix + "w_fc"].T).reshape(batch, seq, hidden)
        dres, dg2, db2 = layer_norm_backward(dln2_out, cache.ln2)
        grads[prefix + "ln2_g"] += dg2
        grads[prefix + "ln2_b"] += db2
        dx_attn += dres

        # x_attn = x_in + attn_out
        dattn_out = dx_attn
        dx_in = dx_attn.copy()

        # attn_out = merged @ w_proj + b_proj
        flat_merged = cache.att_out_merged.reshape(-1, hidden)
        flat_dattn = dattn_out.reshape(-1, hidden)
        grads[prefix + "w_proj"] += flat_merged.T @ flat_dattn
        grads[prefix + "b_proj"] += flat_dattn.sum(axis=0)
        dmerged = (flat_dattn @ p[prefix + "w_proj"].T).reshape(batch, seq, hidden)
        datt = dmerged.reshape(batch, seq, heads, head_dim).transpose(0, 2, 1, 3)

        # att = probs @ v
        probs = cache.att_probs
        dprobs = datt @ cache.v.transpose(0, 1, 3, 2)
        dv = probs.transpose(0, 1, 3, 2) @ datt
        # softmax backward (masked entries have probs == 0, so they drop out)
        dscores = probs * (dprobs - (dprobs * probs).sum(axis=-1, keepdims=True))
        dscores /= math.sqrt(head_dim)
        dq = dscores @ cache.k
        dk = dscores.transpose(0, 1, 3, 2) @ cache.q

        # merge q/k/v gradients back into the fused projection
        def merge_heads(t: np.ndarray) -> np.ndarray:
            return t.transpose(0, 2, 1, 3).reshape(batch, seq, hidden)

        dqkv = np.concatenate([merge_heads(dq), merge_heads(dk), merge_heads(dv)], axis=-1)
        flat_ln1 = cache.ln1_out.reshape(-1, hidden)
        flat_dqkv = dqkv.reshape(-1, 3 * hidden)
        grads[prefix + "w_qkv"] += flat_ln1.T @ flat_dqkv
        grads[prefix + "b_qkv"] += flat_dqkv.sum(axis=0)
        dln1_out = (flat_dqkv @ p[prefix + "w_qkv"].T).reshape(batch, seq, hidden)
        dres1, dg1, db1 = layer_norm_backward(dln1_out, cache.ln1)
        grads[prefix + "ln1_g"] += dg1
        grads[prefix + "ln1_b"] += db1
        dx_in += dres1
        return dx_in

    # -- convenience ----------------------------------------------------------------------
    def loss_and_grads(self, tokens: np.ndarray, targets: np.ndarray) -> Tuple[float, Grads]:
        """Forward + backward in one call."""
        _logits, loss, cache = self.forward(tokens, targets)
        grads = self.backward(cache)
        assert loss is not None
        return loss, grads

    def state_dict(self) -> Dict[str, np.ndarray]:
        """The model part of a checkpoint (flat name -> array)."""
        return dict(self.params)

    def load_state_dict(self, state: Dict[str, np.ndarray]) -> None:
        """Restore parameters from a checkpoint, validating names and shapes."""
        missing = set(self.params) - set(state)
        unexpected = set(state) - set(self.params)
        if missing or unexpected:
            raise ConfigurationError(
                f"state dict mismatch: missing={sorted(missing)[:3]}, unexpected={sorted(unexpected)[:3]}"
            )
        for name, value in state.items():
            if value.shape != self.params[name].shape:
                raise ConfigurationError(
                    f"shape mismatch for {name!r}: {value.shape} vs {self.params[name].shape}"
                )
            self.params[name] = np.array(value, dtype=self.dtype, copy=True)
