"""LLM model accounting, the Table 1 zoo, iteration phase model, and a real NumPy transformer."""

from .adam import AdamConfig, AdamOptimizer
from .iteration_model import FIGURE4_PHASES, IterationPhases, interpolate_phases, phase_breakdown_table, phases_for
from .llm_zoo import MODEL_SIZES, ModelRuntimeConfig, model_config, runtime_config, table1, tiny_config
from .numpy_transformer import NumpyTransformerLM, cross_entropy, gelu, layer_norm, softmax
from .transformer import MODEL_BYTES_PER_PARAM, OPTIMIZER_BYTES_PER_PARAM, TransformerConfig

__all__ = [
    "TransformerConfig",
    "MODEL_BYTES_PER_PARAM",
    "OPTIMIZER_BYTES_PER_PARAM",
    "ModelRuntimeConfig",
    "MODEL_SIZES",
    "model_config",
    "runtime_config",
    "table1",
    "tiny_config",
    "IterationPhases",
    "FIGURE4_PHASES",
    "phases_for",
    "interpolate_phases",
    "phase_breakdown_table",
    "NumpyTransformerLM",
    "AdamOptimizer",
    "AdamConfig",
    "gelu",
    "layer_norm",
    "softmax",
    "cross_entropy",
]
