"""Adam optimizer over flat ``{name: ndarray}`` parameter dicts.

LLM training uses adaptive optimizers whose state (first and second moments,
plus fp32 master weights under mixed precision) triples-to-sextuples the
checkpoint size relative to the bare parameters (§4.1).  This implementation
keeps that state explicitly so the real-mode checkpoint engine has something
meaningful — and large — to capture, and so restore correctness can be
verified bit-exactly (same optimizer state => identical subsequent updates).
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Dict, Optional

import numpy as np

from ..exceptions import ConfigurationError

Params = Dict[str, np.ndarray]


@dataclass(frozen=True)
class AdamConfig:
    """Hyper-parameters of the Adam optimizer."""

    learning_rate: float = 1e-3
    beta1: float = 0.9
    beta2: float = 0.999
    epsilon: float = 1e-8
    weight_decay: float = 0.0

    def __post_init__(self) -> None:
        if self.learning_rate <= 0:
            raise ConfigurationError("learning_rate must be positive")
        if not (0.0 <= self.beta1 < 1.0 and 0.0 <= self.beta2 < 1.0):
            raise ConfigurationError("betas must lie in [0, 1)")
        if self.epsilon <= 0:
            raise ConfigurationError("epsilon must be positive")
        if self.weight_decay < 0:
            raise ConfigurationError("weight_decay must be >= 0")


class AdamOptimizer:
    """Adam with decoupled weight decay over a flat parameter dict."""

    def __init__(self, params: Params, config: Optional[AdamConfig] = None) -> None:
        self.config = config or AdamConfig()
        self._params = params
        self.step_count = 0
        self.exp_avg: Params = {name: np.zeros_like(value, dtype=np.float64) for name, value in params.items()}
        self.exp_avg_sq: Params = {name: np.zeros_like(value, dtype=np.float64) for name, value in params.items()}

    # -- training ------------------------------------------------------------
    def step(self, grads: Params) -> None:
        """Apply one Adam update in place on the bound parameter dict."""
        missing = set(self._params) - set(grads)
        if missing:
            raise ConfigurationError(f"missing gradients for {sorted(missing)[:3]} ...")
        cfg = self.config
        self.step_count += 1
        bias1 = 1.0 - cfg.beta1**self.step_count
        bias2 = 1.0 - cfg.beta2**self.step_count
        for name, param in self._params.items():
            grad = np.asarray(grads[name], dtype=np.float64)
            m = self.exp_avg[name]
            v = self.exp_avg_sq[name]
            m *= cfg.beta1
            m += (1.0 - cfg.beta1) * grad
            v *= cfg.beta2
            v += (1.0 - cfg.beta2) * grad * grad
            m_hat = m / bias1
            v_hat = v / bias2
            update = m_hat / (np.sqrt(v_hat) + cfg.epsilon)
            if cfg.weight_decay:
                update = update + cfg.weight_decay * param.astype(np.float64)
            param -= (cfg.learning_rate * update).astype(param.dtype)

    # -- checkpointing -----------------------------------------------------------
    def state_dict(self) -> Dict[str, object]:
        """Optimizer state for checkpointing (step count + both moments)."""
        return {
            "step": self.step_count,
            "exp_avg": {name: value.copy() for name, value in self.exp_avg.items()},
            "exp_avg_sq": {name: value.copy() for name, value in self.exp_avg_sq.items()},
            "config": {
                "learning_rate": self.config.learning_rate,
                "beta1": self.config.beta1,
                "beta2": self.config.beta2,
                "epsilon": self.config.epsilon,
                "weight_decay": self.config.weight_decay,
            },
        }

    def load_state_dict(self, state: Dict[str, object]) -> None:
        """Restore optimizer state from a checkpoint."""
        exp_avg = state.get("exp_avg")
        exp_avg_sq = state.get("exp_avg_sq")
        if not isinstance(exp_avg, dict) or not isinstance(exp_avg_sq, dict):
            raise ConfigurationError("optimizer state dict is malformed")
        if set(exp_avg) != set(self._params) or set(exp_avg_sq) != set(self._params):
            raise ConfigurationError("optimizer state does not match bound parameters")
        self.step_count = int(state.get("step", 0))
        for name in self._params:
            self.exp_avg[name] = np.array(exp_avg[name], dtype=np.float64, copy=True)
            self.exp_avg_sq[name] = np.array(exp_avg_sq[name], dtype=np.float64, copy=True)

    def state_bytes(self) -> int:
        """Bytes occupied by the optimizer state."""
        total = 0
        for store in (self.exp_avg, self.exp_avg_sq):
            total += sum(value.nbytes for value in store.values())
        return int(total)
