"""Interconnect (PCIe / NVLink / NIC) bandwidth models for the simulator."""

from .links import NetworkLink, NVLinkFabric, PCIeLink, make_nic, make_nvlink, make_pcie_link

__all__ = [
    "PCIeLink",
    "NVLinkFabric",
    "NetworkLink",
    "make_pcie_link",
    "make_nvlink",
    "make_nic",
]
