"""Interconnect models for the simulated platform.

Each physical link is a :class:`~repro.simulator.resources.FairShareLink`.
The topology follows Figure 1(c) of the paper:

* each GPU has its own PCIe Gen4 path to host memory (one GPU per NUMA
  domain on Polaris, so concurrent D2H copies do not contend with each
  other);
* GPUs within a node communicate over NVLink;
* nodes reach the parallel file system over the NIC;
* node-local NVMe and the PFS are modelled in :mod:`repro.io.sim_storage`.

The D2H path distinguishes pinned and pageable destinations: the paper's
"Asynchronous checkpointing" baseline copies into freshly allocated pageable
memory and pays both the lower bandwidth and the allocation/pinning cost.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Optional

from ..config import PlatformSpec
from ..simulator import Environment, Event, FairShareLink


@dataclass
class PCIeLink:
    """The device-to-host path of one GPU."""

    gpu_id: int
    link: FairShareLink
    pinned_bandwidth: float
    pageable_bandwidth: float

    def d2h(self, nbytes: float, pinned: bool = True, tag: Optional[str] = None) -> Event:
        """Start a device-to-host copy and return its completion event."""
        cap = self.pinned_bandwidth if pinned else self.pageable_bandwidth
        return self.link.transfer(nbytes, cap=cap, tag=tag or "d2h")

    def h2d(self, nbytes: float, pinned: bool = True, tag: Optional[str] = None) -> Event:
        """Start a host-to-device copy (restore path)."""
        cap = self.pinned_bandwidth if pinned else self.pageable_bandwidth
        return self.link.transfer(nbytes, cap=cap, tag=tag or "h2d")

    def estimate_d2h(self, nbytes: float, pinned: bool = True) -> float:
        """Uncontended duration of a D2H copy."""
        cap = self.pinned_bandwidth if pinned else self.pageable_bandwidth
        return self.link.estimate_duration(nbytes, cap=cap)


@dataclass
class NVLinkFabric:
    """Intra-node GPU-to-GPU fabric (used by tensor-parallel collectives)."""

    link: FairShareLink

    def transfer(self, nbytes: float, tag: Optional[str] = None) -> Event:
        """Move ``nbytes`` across the fabric."""
        return self.link.transfer(nbytes, tag=tag or "nvlink")


@dataclass
class NetworkLink:
    """The node's NIC (inter-node collectives, consensus messages, PFS path)."""

    link: FairShareLink
    latency: float

    def transfer(self, nbytes: float, tag: Optional[str] = None) -> Event:
        """Move ``nbytes`` over the NIC."""
        return self.link.transfer(nbytes, tag=tag or "nic")


def make_pcie_link(env: Environment, platform: PlatformSpec, gpu_id: int) -> PCIeLink:
    """Create the PCIe path of one GPU from the platform spec."""
    link = FairShareLink(
        env,
        capacity=platform.d2h_pinned_bandwidth,
        name=f"pcie-gpu{gpu_id}",
    )
    return PCIeLink(
        gpu_id=gpu_id,
        link=link,
        pinned_bandwidth=platform.d2h_pinned_bandwidth,
        pageable_bandwidth=platform.d2h_pageable_bandwidth,
    )


def make_nvlink(env: Environment, platform: PlatformSpec, node_id: int) -> NVLinkFabric:
    """Create the NVLink fabric of one node."""
    return NVLinkFabric(
        link=FairShareLink(env, capacity=platform.nvlink_bandwidth, name=f"nvlink-node{node_id}")
    )


def make_nic(env: Environment, platform: PlatformSpec, node_id: int) -> NetworkLink:
    """Create the NIC of one node."""
    return NetworkLink(
        link=FairShareLink(env, capacity=platform.nic_bandwidth, name=f"nic-node{node_id}"),
        latency=platform.network_latency,
    )
