#!/usr/bin/env python
"""Compare the four checkpoint engines on the paper's evaluation workload.

Runs the Figure 7 / Figure 8 experiment (checkpoint every iteration for five
iterations, data-parallel degree 1) for a subset of the Table 1 models on the
simulated Polaris platform and prints the measured checkpoint throughput and
iteration times next to the values the paper reports.

Run with:  python examples/engine_comparison.py [3B 7B 13B ...]
"""

from __future__ import annotations

import sys

from repro.analysis import (
    figure7_8_model_size_sweep,
    figure7_rows,
    figure8_rows,
    headline_speedups,
    print_rows,
)


def main() -> None:
    sizes = sys.argv[1:] or ["3B", "7B", "13B"]
    print(f"simulating models {sizes} with all four engines (5 iterations, ckpt every iteration)")
    results = figure7_8_model_size_sweep(sizes=sizes, iterations=5)

    print()
    print_rows(
        figure7_rows(results),
        columns=["model", "deepspeed", "paper_deepspeed", "async", "paper_async",
                 "torchsnapshot", "paper_torchsnapshot", "datastates", "paper_datastates"],
        title="Figure 7 — checkpoint throughput (GB/s), measured vs paper",
    )
    print()
    print_rows(
        figure8_rows(results),
        columns=["model", "deepspeed", "paper_deepspeed", "async", "paper_async",
                 "torchsnapshot", "paper_torchsnapshot", "datastates", "paper_datastates"],
        title="Figure 8 — avg iteration time while checkpointing (s), measured vs paper",
    )

    claims = headline_speedups(results)
    print()
    print("headline speedups of DataStates-LLM over the baselines "
          "(paper: 3-48x checkpointing, 1.3-2.2x end-to-end):")
    for key, value in claims.items():
        print(f"  {key}: {value:.2f}x")


if __name__ == "__main__":
    main()
