#!/usr/bin/env python
"""Checkpoint-frequency sweep (Figures 11 and 12).

Trains the 7B (and optionally 13B) model for 50 simulated iterations while
varying how many iterations elapse between checkpoints, and reports the three
metrics of Figures 11/12: perceived checkpoint throughput, iteration time
while checkpointing, and end-to-end runtime including trailing flushes.

The interesting effect to look for (§6.4): with the 7B model's short
iterations, checkpointing *every* iteration outpaces the flushes to the
parallel file system, the host staging buffer fills up, and DataStates'
throughput drops — whereas the 13B model's longer iterations leave enough
slack for the flushes to keep up at every frequency.

Run with:  python examples/checkpoint_frequency_sweep.py [7B|13B] [iterations]
"""

from __future__ import annotations

import sys

from repro.analysis import figure11_12_frequency_sweep, frequency_sweep_rows, print_rows


def main() -> None:
    model = sys.argv[1] if len(sys.argv) > 1 else "7B"
    iterations = int(sys.argv[2]) if len(sys.argv) > 2 else 50
    intervals = (10, 5, 4, 3, 2, 1)
    print(f"sweeping checkpoint interval {list(intervals)} for the {model} model "
          f"({iterations} iterations per run) ...")
    results = figure11_12_frequency_sweep(model, intervals=intervals, iterations=iterations)
    rows = frequency_sweep_rows(model, results)

    for metric, title in [
        ("throughput", "(a) checkpoint throughput (GB/s)"),
        ("iter_time", "(b) iteration time while checkpointing (s)"),
        ("end_to_end", "(c) end-to-end runtime (s)"),
    ]:
        columns = ["checkpoint_interval"]
        for engine in ["deepspeed", "async", "torchsnapshot", "datastates"]:
            columns.append(f"{metric}_{engine}")
            columns.append(f"paper_{metric}_{engine}")
        print()
        print_rows(rows, columns=columns, title=f"Figure {'11' if model == '7B' else '12'} {title}")


if __name__ == "__main__":
    main()
