#!/usr/bin/env python
"""Data-parallel scaling of checkpoint throughput (Figures 9 and 10).

Under ZeRO stage 1 the optimizer state (and, in the default DeepSpeed
checkpoint layout, the model weights too) is partitioned across data-parallel
replicas, so each rank writes a smaller shard and the same aggregate
checkpoint can be flushed through more parallel streams.  This example runs
the strong-scaling experiment of Figures 9 (13B) and 10 (30B).

Run with:  python examples/data_parallel_scaling.py [13B|30B] [max_dp]
"""

from __future__ import annotations

import sys

from repro.analysis import dp_sweep_rows, figure9_10_dp_sweep, print_rows


def main() -> None:
    model = sys.argv[1] if len(sys.argv) > 1 else "13B"
    max_dp = int(sys.argv[2]) if len(sys.argv) > 2 else 8
    dp_degrees = [dp for dp in (1, 2, 4, 8, 16) if dp <= max_dp]
    print(f"scaling the {model} model across data-parallel degrees {dp_degrees} ...")
    results = figure9_10_dp_sweep(model, dp_degrees=dp_degrees, iterations=5)
    rows = dp_sweep_rows(model, results)
    print()
    print_rows(
        rows,
        columns=["data_parallel", "num_gpus", "ckpt_per_gpu_gb",
                 "deepspeed", "paper_deepspeed", "async", "paper_async",
                 "torchsnapshot", "paper_torchsnapshot", "datastates", "paper_datastates"],
        title=f"Figure {'9' if model == '13B' else '10'} — checkpoint throughput (GB/s) vs DP degree",
    )


if __name__ == "__main__":
    main()
