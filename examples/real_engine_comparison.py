#!/usr/bin/env python
"""Compare the four real-mode checkpoint engines on actual NumPy training.

The real-mode counterpart of ``examples/engine_comparison.py`` (which drives
the discrete-event simulator): the same tiny NumPy transformer is trained
under each engine selected from the registry —

* ``deepspeed``     — synchronous ``torch.save``-style baseline; save()
                      blocks until the checkpoint is committed;
* ``async``         — CheckFreq-like: blocking snapshot into a freshly
                      allocated buffer, background flush;
* ``torchsnapshot`` — chunked serialization with parallel writers, blocking
                      until the flush completes;
* ``datastates``    — lazy asynchronous capture + streaming flush + async
                      two-phase commit (the paper's contribution)

— and the training-visible checkpoint stall is printed per engine.  The
ordering mirrors Figure 8: DataStates blocks the training loop least.

Run with:  python examples/real_engine_comparison.py [iterations]
"""

from __future__ import annotations

import sys
import tempfile

from repro.analysis import compare_real_engines, comparison_table_rows, format_table


def main() -> None:
    iterations = int(sys.argv[1]) if len(sys.argv) > 1 else 4
    workdir = tempfile.mkdtemp(prefix="real-engine-comparison-")
    print(f"training {iterations} iterations per engine (checkpoint every "
          f"iteration), checkpoints -> {workdir}")

    rows = compare_real_engines(workdir, iterations=iterations,
                                checkpoint_interval=1)
    print()
    print(format_table(
        comparison_table_rows(rows),
        title="Real-mode engines — training-visible checkpoint stall"))

    by_engine = {row["engine"]: float(row["blocked_ms_per_iteration"]) for row in rows}
    best = min(by_engine, key=by_engine.get)
    print(f"\nlowest blocked time per iteration: {best} "
          f"({by_engine[best]:.2f} ms/iter)")
    for name, blocked in sorted(by_engine.items(), key=lambda item: item[1]):
        if name != best:
            print(f"  {name}: {blocked / max(by_engine[best], 1e-9):.1f}x the "
                  f"stall of {best}")


if __name__ == "__main__":
    main()
