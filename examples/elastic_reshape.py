#!/usr/bin/env python
"""Elastic restart: restore a checkpoint onto a different parallel topology.

Scenario (the paper's elasticity motivation, §1/§6.3): a job training on a
(dp=4, tp=2) grid of 8 ranks loses nodes and must restart on a (dp=2, tp=4)
grid — same model, different partitioning.  The checkpoint's manifest carries
the save-time topology (manifest schema v4), so the restore side can
re-partition the shards without any help from the training script:

1. save a full model + Adam state as an elastic checkpoint at dp4xtp2;
2. restore it reshaped onto dp2xtp4 through ``RestoreSpec.reshaped`` —
   each new rank gets exactly its slice of the re-partitioned state;
3. merge the reshaped slices back and verify bit-identity with the original;
4. run the offline converter (`repro reshape` under the hood) to materialise
   the dp2xtp4 layout as a first-class committed checkpoint.

Run with:  python examples/elastic_reshape.py
"""

from __future__ import annotations

import tempfile
from pathlib import Path

import numpy as np

from repro.io import FileStore
from repro.restart import (
    CheckpointLoader,
    RestoreSpec,
    elastic_topology,
    merge_full_state,
    reshape_checkpoint,
    save_elastic_checkpoint,
)


def main() -> None:
    rng = np.random.default_rng(3)
    model = {
        "embed": rng.standard_normal((64, 32)).astype(np.float32),
        "attn_qkv": rng.standard_normal((32, 96)).astype(np.float32),
        "attn_out": rng.standard_normal((32, 32)).astype(np.float32),
        "mlp_up": rng.standard_normal((32, 128)).astype(np.float32),
        "mlp_down": rng.standard_normal((128, 32)).astype(np.float32),
        "ln_scale": rng.standard_normal((32,)).astype(np.float32),
    }
    full_state = {
        "model": model,
        # Adam moments, ZeRO-1-partitioned across the DP group at save time.
        "zero": {key: {"m": np.zeros_like(value), "v": np.zeros_like(value)}
                 for key, value in model.items()},
        "extra": {"iteration": 1200, "lr": 3e-4},
    }
    # The Megatron concat-dim table: column-parallel weights split on axis 1,
    # row-parallel on axis 0; everything absent stays replicated per TP rank.
    axes = {"attn_qkv": 1, "attn_out": 0, "mlp_up": 1, "mlp_down": 0,
            "embed": 0}

    workdir = Path(tempfile.mkdtemp(prefix="elastic-reshape-"))
    store = FileStore(workdir)

    # --- phase 1: save at the original 8-rank grid -----------------------------
    source = elastic_topology(model, data_parallel=4, tensor_parallel=2,
                              axes=axes)
    save_elastic_checkpoint(store, full_state, source, tag="ckpt-001200",
                            iteration=1200)
    info = CheckpointLoader(store).latest()
    print(f"saved {info.tag} at {info.topology.describe()} "
          f"({info.world_size} ranks, manifest schema v{info.version})")

    # --- phase 2: restore reshaped onto the shrunken cluster -------------------
    target = elastic_topology(model, data_parallel=2, tensor_parallel=4,
                              axes=axes)
    loader = CheckpointLoader(store)
    # One elastically restarted worker loads exactly its slice:
    rank0 = loader.restore(RestoreSpec.of_rank(0).reshaped(target))
    print(f"rank 0 of {target.describe()} holds "
          f"{len(rank0['model'])} tensor slices")

    # --- phase 3: whole-grid restore merges back bit-identically ---------------
    reshaped = loader.restore(RestoreSpec.full().reshaped(target))
    merged = merge_full_state(reshaped, target)
    identical = all(
        np.array_equal(merged["model"][key], model[key])
        for key in model
    )
    print(f"merged dp2xtp4 restore bit-identical to the original: {identical}")
    assert identical

    # --- phase 4: offline conversion (what `repro reshape` runs) ---------------
    report = reshape_checkpoint(store, target, tag="ckpt-001200")
    print(f"offline converter: {report.summary()}")
    tags = store.list_committed_checkpoints()
    print(f"committed checkpoints now: {sorted(tags)}")


if __name__ == "__main__":
    main()
