#!/usr/bin/env python
"""Failure injection and recovery with the real-mode engine.

Scenario (the paper's motivating use case, §1):

1. train with asynchronous checkpointing every iteration;
2. a "failure" strikes: the run dies after a checkpoint's shard files were
   written but *before* the consolidation protocol published its manifest —
   leaving a torn checkpoint on disk;
3. on restart, the loader ignores the torn checkpoint (no manifest), prunes
   it, restores the newest *committed* checkpoint, and training resumes
   bit-exactly from there.

Run with:  python examples/restart_after_failure.py
"""

from __future__ import annotations

import tempfile

import numpy as np

from repro import CheckpointLoader, DataStatesCheckpointEngine, FileStore
from repro.model import NumpyTransformerLM, tiny_config
from repro.serialization import serialize_state
from repro.training import RealTrainer


def main() -> None:
    workdir = tempfile.mkdtemp(prefix="datastates-restart-")
    store = FileStore(workdir)
    config = tiny_config(hidden_size=64, num_layers=2)

    # --- phase 1: train with checkpointing -------------------------------------
    engine = DataStatesCheckpointEngine(store, host_buffer_size=64 << 20)
    trainer = RealTrainer(NumpyTransformerLM(config, seed=7), engine=engine)
    trainer.train(iterations=4, checkpoint_interval=1)
    engine.wait_all()
    engine.shutdown()
    print(f"trained 4 iterations; committed checkpoints: {store.list_committed_checkpoints()}")

    # --- phase 2: simulate a crash mid-checkpoint --------------------------------
    # The crash happens after the shard of iteration 5 hit the disk but before
    # the two-phase commit finished: shards exist, the manifest does not.
    torn_tag = "ckpt-000005"
    partial_state = trainer.state_dict()
    store.write_shard(torn_tag, "rank0", [serialize_state(partial_state)])
    print(f"simulated crash: {torn_tag!r} has shard files but no manifest (torn checkpoint)")

    # --- phase 3: restart ---------------------------------------------------------
    loader = CheckpointLoader(store)
    pruned = loader.prune_uncommitted()
    latest = loader.latest()
    assert latest is not None
    print(f"restart: pruned torn checkpoints {pruned}; resuming from {latest.tag} "
          f"(iteration {latest.iteration})")

    resumed = RealTrainer(NumpyTransformerLM(config, seed=99), engine=None)
    resumed.resume_from(loader)
    match = all(
        np.array_equal(resumed.model.params[name], trainer.model.params[name])
        for name in trainer.model.params
    )
    print(f"resumed at iteration {resumed.iteration}; parameters identical to pre-crash state: {match}")

    # continue training after recovery
    report = resumed.train(iterations=2, checkpoint_interval=0)
    print(f"post-recovery losses: {[round(loss, 4) for loss in report.losses]}")


if __name__ == "__main__":
    main()
