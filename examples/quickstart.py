#!/usr/bin/env python
"""Quickstart: train a small transformer with lazy asynchronous checkpointing.

Demonstrates the real-mode engine end to end:

1. build a tiny NumPy transformer and the DataStates checkpoint engine;
2. train for a few iterations, checkpointing every other iteration — the
   engine captures model + optimizer state in the background while the next
   iteration's forward/backward runs;
3. wait for all flushes/commits, then restore the latest checkpoint and show
   that training resumes from exactly where it left off.

Run with:  python examples/quickstart.py
"""

from __future__ import annotations

import tempfile

import numpy as np

from repro import CheckpointLoader, DataStatesCheckpointEngine, FileStore
from repro.model import NumpyTransformerLM, tiny_config
from repro.training import RealTrainer


def main() -> None:
    workdir = tempfile.mkdtemp(prefix="datastates-quickstart-")
    store = FileStore(workdir)

    # 64 MiB of "pinned" host staging buffer is plenty for the tiny model.
    engine = DataStatesCheckpointEngine(store, host_buffer_size=64 << 20)
    model = NumpyTransformerLM(tiny_config(hidden_size=64, num_layers=2), seed=0)
    trainer = RealTrainer(model, engine=engine)

    print(f"training a {model.num_parameters():,}-parameter model, checkpoints -> {workdir}")
    report = trainer.train(iterations=8, checkpoint_interval=2)
    engine.wait_all()

    print("\niteration  loss      ckpt  blocked(ms)")
    for step in report.steps:
        print(f"{step.iteration:9d}  {step.loss:.4f}  {'yes' if step.checkpointed else '   '}"
              f"  {step.checkpoint_block_seconds * 1e3:10.2f}")

    loader = CheckpointLoader(store)
    latest = loader.latest()
    assert latest is not None
    print(f"\ncommitted checkpoints: {[info.tag for info in loader.committed_checkpoints()]}")
    print(f"restoring {latest.tag} (iteration {latest.iteration}) ...")

    restored_model = NumpyTransformerLM(tiny_config(hidden_size=64, num_layers=2), seed=123)
    restored = RealTrainer(restored_model, engine=None)
    restored.resume_from(loader)
    match = all(
        np.array_equal(restored_model.params[name], trainer.model.params[name])
        for name in trainer.model.params
    )
    print(f"restored iteration: {restored.iteration}; parameters identical: {match}")

    engine.shutdown()


if __name__ == "__main__":
    main()
