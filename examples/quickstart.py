#!/usr/bin/env python
"""Quickstart: train a small transformer with lazy asynchronous checkpointing.

Demonstrates the real-mode engine API end to end:

1. pick an engine from the registry by name — ``create_real_engine(name,
   store)`` accepts ``"deepspeed"``/``"sync"``, ``"async"``/``"checkfreq"``,
   ``"torchsnapshot"``, and ``"datastates"`` (the four baselines of §6.2);
2. train for a few iterations, checkpointing every other iteration — the
   DataStates engine captures model + optimizer state in the background while
   the next iteration's forward/backward runs;
3. wait for all flushes/commits, then restore the latest checkpoint through
   the same engine protocol and show that training resumes from exactly
   where it left off.

Run with:  python examples/quickstart.py [engine-name]
"""

from __future__ import annotations

import sys
import tempfile

import numpy as np

from repro import CheckpointLoader, FileStore, create_real_engine
from repro.model import NumpyTransformerLM, tiny_config
from repro.training import RealTrainer


def main() -> None:
    engine_name = sys.argv[1] if len(sys.argv) > 1 else "datastates"
    workdir = tempfile.mkdtemp(prefix=f"{engine_name}-quickstart-")
    store = FileStore(workdir)

    # 64 MiB of "pinned" host staging buffer is plenty for the tiny model.
    with create_real_engine(engine_name, store, host_buffer_size=64 << 20) as engine:
        model = NumpyTransformerLM(tiny_config(hidden_size=64, num_layers=2), seed=0)
        trainer = RealTrainer(model, engine=engine)

        print(f"training a {model.num_parameters():,}-parameter model under "
              f"{engine.name!r}, checkpoints -> {workdir}")
        report = trainer.train(iterations=8, checkpoint_interval=2)
        engine.wait_all()

        print("\niteration  loss      ckpt  blocked(ms)")
        for step in report.steps:
            print(f"{step.iteration:9d}  {step.loss:.4f}  {'yes' if step.checkpointed else '   '}"
                  f"  {step.checkpoint_block_seconds * 1e3:10.2f}")

        print(f"\ncommitted checkpoints: {engine.list_checkpoints()}")
        latest = engine.latest_checkpoint()
        assert latest is not None
        print(f"restoring {latest} through the engine protocol ...")

        restored_model = NumpyTransformerLM(tiny_config(hidden_size=64, num_layers=2), seed=123)
        restored = RealTrainer(restored_model, engine=None)
        restored.resume_from(engine)   # any CheckpointEngine or CheckpointLoader works
        match = all(
            np.array_equal(restored_model.params[name], trainer.model.params[name])
            for name in trainer.model.params
        )
        print(f"restored iteration: {restored.iteration}; parameters identical: {match}")

        # The standalone loader sees the same checkpoints (shared restore path).
        loader = CheckpointLoader(store)
        assert [info.tag for info in loader.committed_checkpoints()] == engine.list_checkpoints()


if __name__ == "__main__":
    main()
